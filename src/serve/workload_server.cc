#include "serve/workload_server.h"

#include <algorithm>
#include <utility>

namespace ma::serve {

/// Shared per-query state behind a QueryHandle. The driver thread
/// writes result fields before setting done (under mu); waiters read
/// them after observing done (under mu) — no torn reads.
struct QueryHandle::State {
  u64 id = 0;
  const plan::LogicalPlan* plan = nullptr;
  std::string label;
  SubmitOptions opts;
  u64 budget_bytes = 0;  // resolved against the server default
  std::chrono::steady_clock::time_point enqueued_at;

  /// Survives QueryContext::Reset() between attempts: a cancel landing
  /// in the Reset window would otherwise be wiped and lost. The driver
  /// re-checks this flag after every Reset.
  std::atomic<bool> cancel_requested{false};
  QueryContext ctx;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  QueryResult result;
};

u64 QueryHandle::id() const { return state_ != nullptr ? state_->id : 0; }

const QueryResult& QueryHandle::Wait() const& {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

void QueryHandle::Cancel() {
  if (state_ == nullptr) return;
  // Order matters: raise the persistent flag first, then poke the
  // context. If the driver resets the context concurrently, the flag
  // re-check after Reset still lands the cancel.
  state_->cancel_requested.store(true, std::memory_order_relaxed);
  state_->ctx.Cancel();
}

namespace {

int ResolvePoolThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// A RunResult for a query that failed outside Engine::Run (shed,
/// lease failure, cancelled between attempts).
RunResult FailedRun(Status s) {
  RunResult r;
  r.status = std::move(s);
  r.reason = ReasonFromStatus(r.status);
  return r;
}

}  // namespace

WorkloadServer::WorkloadServer(ServerConfig config)
    : config_(std::move(config)),
      pool_(ResolvePoolThreads(config_.pool_threads)),
      admission_(config_.admission),
      broker_(config_.memory_pool_bytes),
      retry_(config_.retry),
      store_(config_.knowledge.store != nullptr
                 ? config_.knowledge.store
                 : std::make_shared<knowledge::ProfileStore>()) {
  if (!config_.knowledge.store_path.empty()) {
    // A missing/corrupt store file is a cold start, not a failure: the
    // store guarantees it is empty after a failed Load.
    store_loaded_ = store_->Load(config_.knowledge.store_path).ok();
  }
  if (config_.knowledge.strategies) {
    // One book for all drivers: what one query learned about a stage
    // steers the next execution of the same plan, whichever driver gets
    // it. An externally supplied book (session.macro.book) is adopted
    // so tests/benches can observe it directly.
    strategy_book_ = config_.session.macro.book != nullptr
                         ? config_.session.macro.book
                         : std::make_shared<StrategyBook>(
                               config_.session.macro.params);
    strategy_book_->Seed(store_->DumpStrategies());
  }
  const int drivers = std::max(1, config_.max_concurrent);
  drivers_.reserve(drivers);
  for (int i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

WorkloadServer::~WorkloadServer() { Shutdown(); }

void WorkloadServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : drivers_) {
    if (t.joinable()) t.join();
  }
  // Drivers drained: persist everything learned this run. Best-effort —
  // a failed save costs the next process its warm start, nothing else.
  bool save = false;
  bool merge_strategies = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (strategy_book_ != nullptr && !strategies_merged_) {
      strategies_merged_ = true;
      merge_strategies = true;
    }
    if (!config_.knowledge.store_path.empty() && !store_saved_) {
      store_saved_ = true;
      save = true;
    }
  }
  // The book's live delta (seeded priors excluded — no double count)
  // becomes the store's strategy records, before the save so a
  // persisted store carries them.
  if (merge_strategies) store_->MergeStrategies(strategy_book_->ExportDelta());
  if (save) store_->Save(config_.knowledge.store_path);
}

QueryHandle WorkloadServer::Submit(const plan::LogicalPlan* plan,
                                   std::string label, SubmitOptions opts) {
  auto state = std::make_shared<QueryHandle::State>();
  state->id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  state->plan = plan;
  state->label = std::move(label);
  state->opts = opts;
  state->budget_bytes = opts.budget_bytes != ~0ull
                            ? opts.budget_bytes
                            : config_.default_query_budget;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      FinishRejected(state,
                     Status::Unavailable("server is shutting down"));
      return QueryHandle(std::move(state));
    }
    Status admit = admission_.AdmitOrReject(static_cast<int>(queue_.size()));
    if (!admit.ok()) {
      FinishRejected(state, std::move(admit));
      return QueryHandle(std::move(state));
    }
    state->enqueued_at = std::chrono::steady_clock::now();
    queue_.push_back(state);
  }
  queue_cv_.notify_one();
  return QueryHandle(std::move(state));
}

void WorkloadServer::DriverLoop() {
  // One session per driver, all on the one shared pool. Sessions are
  // reused across the queries this driver serves; set_task_tag relabels
  // the pool phases per query.
  plan::SessionConfig sc = config_.session;
  sc.shared_pool = &pool_;
  if (strategy_book_ != nullptr) {
    sc.macro.enabled = true;
    sc.macro.book = strategy_book_;
  }
  plan::QuerySession session(sc);

  for (;;) {
    std::shared_ptr<QueryHandle::State> q;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      q = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto now = std::chrono::steady_clock::now();
    q->result.queue_wait =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - q->enqueued_at);
    Status age = admission_.CheckQueueAge(q->enqueued_at, now);
    if (!age.ok()) {
      FinishRejected(q, std::move(age));
      continue;
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    Execute(q.get(), &session);
    if (q->result.run.status.ok()) {
      completed_ok_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    Finish(q);
  }
}

void WorkloadServer::Execute(QueryHandle::State* q,
                             plan::QuerySession* session) {
  session->set_task_tag(q->label);
  // Warm start: seed this query's fresh bandit instances from the
  // store's current snapshot (reward priors only — never result
  // bytes). Resolved once per query, so retries see stable priors.
  session->set_warm_start(config_.knowledge.warm_start ? store_->Snapshot()
                                                       : nullptr);
  // Plan cache: reuse (or compile and insert) the stage-DAG for this
  // plan's fingerprint. kSerial never uses staged execution, so it
  // skips the cache entirely. The shared_ptr keeps the entry alive for
  // the whole retry loop even if the cache is cleared concurrently.
  std::shared_ptr<const knowledge::CachedPlan> cached;
  if (config_.knowledge.plan_cache &&
      q->opts.mode != plan::ExecMode::kSerial) {
    cached = plan_cache_.GetOrCompile(*q->plan);
  }
  bool lease_held = false;
  for (int attempt = 1;; ++attempt) {
    q->result.attempts = attempt;
    if (attempt > 1) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(retry_.Backoff(q->id, attempt));
    }
    if (q->cancel_requested.load(std::memory_order_relaxed)) {
      q->result.run = FailedRun(Status::Cancelled("query cancelled"));
      break;
    }
    // One lease spans all attempts (Reset keeps it); a failed
    // acquisition is itself a transient, retryable failure.
    if (!lease_held) {
      Status lease =
          broker_.Acquire(q->budget_bytes, config_.lease_max_wait);
      if (!lease.ok()) {
        const bool retry = retry_.ShouldRetry(lease, attempt);
        q->result.run = FailedRun(std::move(lease));
        if (retry) continue;
        break;
      }
      lease_held = true;
      const u64 bytes = q->budget_bytes;
      q->ctx.AdoptBudgetLease(bytes,
                              [this, bytes] { broker_.Release(bytes); });
    }
    // Fresh attempt: clear error/stop/memory state, re-arm the
    // per-attempt timeout, then re-check cancellation — Reset wipes the
    // stop flag, so a cancel that raced it must be re-applied.
    q->ctx.Reset();
    q->ctx.set_fault_injector(q->opts.injector);
    if (q->opts.timeout.count() > 0) q->ctx.SetTimeout(q->opts.timeout);
    if (q->cancel_requested.load(std::memory_order_relaxed)) {
      q->ctx.Cancel();
    }
    // Graceful degradation: staged-parallel only while a parallel slot
    // is free; otherwise run serial rather than stacking more fan-out
    // onto a saturated pool. Byte-identity across modes (the plan-layer
    // determinism contract) makes this invisible in the results.
    plan::ExecMode mode = q->opts.mode;
    bool slot = false;
    if (mode != plan::ExecMode::kSerial) {
      slot = TryAcquireParallelSlot();
      if (!slot) {
        mode = plan::ExecMode::kSerial;
        if (!q->result.degraded_to_serial) {
          q->result.degraded_to_serial = true;
          degraded_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    RunResult r = session->Run(*q->plan, mode, &q->ctx,
                               cached != nullptr ? &cached->stages : nullptr);
    if (slot) ReleaseParallelSlot();
    const bool retry = retry_.ShouldRetry(r.status, attempt);
    q->result.run = std::move(r);
    if (!retry) break;
  }
  // Learn from success only: a failed attempt's profile is partial and
  // would bias the priors.
  if (config_.knowledge.learn && q->result.run.status.ok()) {
    store_->Merge(session->Profile());
  }
  session->set_warm_start(nullptr);
  q->ctx.ReleaseBudgetLease();
}

void WorkloadServer::FinishRejected(
    const std::shared_ptr<QueryHandle::State>& q, Status why) {
  MA_CHECK(why.code() == StatusCode::kUnavailable);
  rejected_.fetch_add(1, std::memory_order_relaxed);
  q->result.attempts = 0;
  q->result.run = FailedRun(std::move(why));
  Finish(q);
}

void WorkloadServer::Finish(const std::shared_ptr<QueryHandle::State>& q) {
  {
    std::lock_guard<std::mutex> lock(q->mu);
    q->done = true;
  }
  q->cv.notify_all();
}

bool WorkloadServer::TryAcquireParallelSlot() {
  int cur = active_parallel_.load(std::memory_order_relaxed);
  while (cur < config_.max_parallel_queries) {
    if (active_parallel_.compare_exchange_weak(cur, cur + 1,
                                               std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void WorkloadServer::ReleaseParallelSlot() {
  active_parallel_.fetch_sub(1, std::memory_order_acq_rel);
}

ServerStats WorkloadServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.degraded_to_serial = degraded_.load(std::memory_order_relaxed);
  s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.plan_cache_hits = plan_cache_.hits();
  s.plan_cache_misses = plan_cache_.misses();
  s.profiles_merged = store_->profiles_merged();
  s.store_profiles = store_->size();
  if (strategy_book_ != nullptr) {
    s.strategy_decisions = strategy_book_->decisions();
    s.strategy_switches = strategy_book_->switches();
  }
  s.store_strategies = store_->strategies_size();
  return s;
}

}  // namespace ma::serve
