#include "serve/admission.h"

#include <string>

namespace ma::serve {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

Status AdmissionController::AdmitOrReject(int queued_now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_now >= config_.max_queue_depth) {
    ++rejected_queue_full_;
    return Status::Unavailable(
        "admission queue full (" + std::to_string(queued_now) + "/" +
        std::to_string(config_.max_queue_depth) + " queued)");
  }
  ++admitted_;
  return Status::OK();
}

Status AdmissionController::CheckQueueAge(
    std::chrono::steady_clock::time_point enqueued_at,
    std::chrono::steady_clock::time_point now) {
  if (config_.queue_deadline.count() <= 0) return Status::OK();
  const auto waited = now - enqueued_at;
  if (waited <= config_.queue_deadline) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_queue_deadline_;
  const auto waited_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(waited);
  return Status::Unavailable(
      "queued " + std::to_string(waited_ms.count()) + "ms, past the " +
      std::to_string(config_.queue_deadline.count()) +
      "ms queue deadline");
}

u64 AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

u64 AdmissionController::rejected_queue_full() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_queue_full_;
}

u64 AdmissionController::rejected_queue_deadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_queue_deadline_;
}

}  // namespace ma::serve
