#include "serve/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace ma::serve {
namespace {

/// splitmix64 finalizer — the standard 64-bit avalanche. Cheap, and
/// statistically fine for jitter (this is not cryptographic).
u64 Mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool RetryPolicy::IsTransient(const Status& s) {
  switch (s.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

std::chrono::microseconds RetryPolicy::Backoff(u64 query_id,
                                               int attempt) const {
  if (attempt < 2) return std::chrono::microseconds(0);
  f64 base = static_cast<f64>(config_.initial_backoff.count()) *
             std::pow(config_.multiplier, attempt - 2);
  base = std::min(base, static_cast<f64>(config_.max_backoff.count()));
  // Jitter factor in [1/2, 1): enough spread to de-synchronize
  // retrying queries, deterministic for (seed, query, attempt).
  const u64 h = Mix64(config_.seed ^ Mix64(query_id) ^
                      Mix64(static_cast<u64>(attempt)));
  const f64 jitter = 0.5 + 0.5 * (static_cast<f64>(h >> 11) /
                                  static_cast<f64>(1ull << 53));
  return std::chrono::microseconds(
      static_cast<i64>(std::llround(base * jitter)));
}

}  // namespace ma::serve
