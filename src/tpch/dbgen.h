// TPC-H data generator (a pseudo-dbgen). Generates the eight TPC-H
// tables at a configurable scale factor into in-memory columnar tables,
// with the value domains and correlations the 22 queries rely on.
//
// Physical-design notes (documented in DESIGN.md):
//  * Dates are stored as i64 day numbers (days since 1992-01-01), so
//    date predicates are integer range selections — like Vectorwise
//    after dictionary/date compression. Interval constants reduce to
//    integers at plan time via Date().
//  * Low-cardinality string columns also carry a parallel "<name>_code"
//    i64 column (dictionary code); joins and group-bys use codes.
//  * orders is clustered by o_orderdate (keys assigned in date order,
//    as a warehouse would cluster), giving date-range selections the
//    locality that produces the paper's Figure 2/4 phase behavior; as a
//    consequence both o_orderkey and l_orderkey are ascending, which the
//    merge-join plans exploit.
//  * l_pskey / ps_pskey = partkey * 100000 + suppkey encode the
//    composite (partkey, suppkey) foreign key into one i64.
#ifndef MA_TPCH_DBGEN_H_
#define MA_TPCH_DBGEN_H_

#include <memory>

#include "storage/catalog.h"

namespace ma::tpch {

struct TpchConfig {
  f64 scale_factor = 0.05;
  u64 seed = 19940401;
  /// Probability of injecting the Q13/Q16 NOT-LIKE phrases.
  f64 phrase_prob = 0.03;
};

/// Day number of a calendar date, relative to 1992-01-01 (day 0). Valid
/// for the TPC-H range 1992..1998 (and a bit beyond).
i64 Date(int year, int month, int day);

struct TpchData {
  Catalog catalog;
  Table* region = nullptr;
  Table* nation = nullptr;
  Table* supplier = nullptr;
  Table* customer = nullptr;
  Table* part = nullptr;
  Table* partsupp = nullptr;
  Table* orders = nullptr;
  Table* lineitem = nullptr;
};

/// Generates all eight tables. Deterministic for a given config.
std::unique_ptr<TpchData> Generate(const TpchConfig& config);

}  // namespace ma::tpch

#endif  // MA_TPCH_DBGEN_H_
