#include "tpch/dbgen.h"

#include <algorithm>
#include <numeric>

#include "tpch/text_pool.h"

namespace ma::tpch {
namespace {

/// Days from civil date (Howard Hinnant's algorithm), then rebased.
i64 DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<i64>(doe) - 719468;
}

constexpr int kSuppliersPerSf = 10000;
constexpr int kCustomersPerSf = 150000;
constexpr int kPartsPerSf = 200000;
constexpr int kOrdersPerSf = 1500000;

}  // namespace

i64 Date(int year, int month, int day) {
  static const i64 kEpoch = DaysFromCivil(1992, 1, 1);
  return DaysFromCivil(year, month, day) - kEpoch;
}

std::unique_ptr<TpchData> Generate(const TpchConfig& config) {
  auto data = std::make_unique<TpchData>();
  Rng rng(config.seed);

  const size_t n_supplier = std::max<size_t>(
      10, static_cast<size_t>(kSuppliersPerSf * config.scale_factor));
  const size_t n_customer = std::max<size_t>(
      100, static_cast<size_t>(kCustomersPerSf * config.scale_factor));
  const size_t n_part = std::max<size_t>(
      200, static_cast<size_t>(kPartsPerSf * config.scale_factor));
  const size_t n_orders = std::max<size_t>(
      1000, static_cast<size_t>(kOrdersPerSf * config.scale_factor));

  const i64 kStart = Date(1992, 1, 1);
  const i64 kEnd = Date(1998, 8, 2);
  const i64 kCutoff = Date(1995, 6, 17);

  // ---- region ----
  {
    auto t = std::make_unique<Table>("region");
    Column* rk = t->AddColumn("r_regionkey", PhysicalType::kI64);
    Column* rn = t->AddColumn("r_name", PhysicalType::kStr);
    Column* rc = t->AddColumn("r_comment", PhysicalType::kStr);
    for (size_t i = 0; i < RegionNames().size(); ++i) {
      rk->Append<i64>(static_cast<i64>(i));
      rn->AppendString(RegionNames()[i]);
      rc->AppendString(MakeComment(&rng, 4, 10));
    }
    t->set_row_count(RegionNames().size());
    data->region = data->catalog.AddTable(std::move(t));
  }

  // ---- nation ----
  {
    auto t = std::make_unique<Table>("nation");
    Column* nk = t->AddColumn("n_nationkey", PhysicalType::kI64);
    Column* nn = t->AddColumn("n_name", PhysicalType::kStr);
    Column* nr = t->AddColumn("n_regionkey", PhysicalType::kI64);
    Column* nc = t->AddColumn("n_comment", PhysicalType::kStr);
    for (size_t i = 0; i < NationNames().size(); ++i) {
      nk->Append<i64>(static_cast<i64>(i));
      nn->AppendString(NationNames()[i]);
      nr->Append<i64>(NationRegion(static_cast<int>(i)));
      nc->AppendString(MakeComment(&rng, 4, 10));
    }
    t->set_row_count(NationNames().size());
    data->nation = data->catalog.AddTable(std::move(t));
  }

  // ---- supplier ----
  {
    auto t = std::make_unique<Table>("supplier");
    Column* sk = t->AddColumn("s_suppkey", PhysicalType::kI64);
    Column* sn = t->AddColumn("s_name", PhysicalType::kStr);
    Column* sa = t->AddColumn("s_address", PhysicalType::kStr);
    Column* snk = t->AddColumn("s_nationkey", PhysicalType::kI64);
    Column* sp = t->AddColumn("s_phone", PhysicalType::kStr);
    Column* sb = t->AddColumn("s_acctbal", PhysicalType::kF64);
    Column* sc = t->AddColumn("s_comment", PhysicalType::kStr);
    for (size_t i = 0; i < n_supplier; ++i) {
      const int nation = static_cast<int>(rng.NextBounded(25));
      sk->Append<i64>(static_cast<i64>(i + 1));
      sn->AppendString("Supplier#" + std::to_string(i + 1));
      sa->AppendString(MakeComment(&rng, 2, 4));
      snk->Append<i64>(nation);
      sp->AppendString(MakePhone(&rng, 10 + nation));
      sb->Append<f64>(static_cast<f64>(rng.NextRange(-99999, 999999)) /
                      100.0);
      sc->AppendString(MakeComment(&rng, 6, 12, "Customer Complaints",
                                   config.phrase_prob));
    }
    t->set_row_count(n_supplier);
    data->supplier = data->catalog.AddTable(std::move(t));
  }

  // ---- customer ----
  {
    auto t = std::make_unique<Table>("customer");
    Column* ck = t->AddColumn("c_custkey", PhysicalType::kI64);
    Column* cn = t->AddColumn("c_name", PhysicalType::kStr);
    Column* ca = t->AddColumn("c_address", PhysicalType::kStr);
    Column* cnk = t->AddColumn("c_nationkey", PhysicalType::kI64);
    Column* cp = t->AddColumn("c_phone", PhysicalType::kStr);
    Column* cb = t->AddColumn("c_acctbal", PhysicalType::kF64);
    Column* cm = t->AddColumn("c_mktsegment", PhysicalType::kStr);
    Column* cmc = t->AddColumn("c_mktsegment_code", PhysicalType::kI64);
    Column* ccc = t->AddColumn("c_cntrycode", PhysicalType::kStr);
    Column* cccc = t->AddColumn("c_cntrycode_code", PhysicalType::kI64);
    Column* cc = t->AddColumn("c_comment", PhysicalType::kStr);
    for (size_t i = 0; i < n_customer; ++i) {
      const int nation = static_cast<int>(rng.NextBounded(25));
      const int seg = static_cast<int>(rng.NextBounded(5));
      ck->Append<i64>(static_cast<i64>(i + 1));
      cn->AppendString("Customer#" + std::to_string(i + 1));
      ca->AppendString(MakeComment(&rng, 2, 4));
      cnk->Append<i64>(nation);
      cp->AppendString(MakePhone(&rng, 10 + nation));
      cb->Append<f64>(static_cast<f64>(rng.NextRange(-99999, 999999)) /
                      100.0);
      cm->AppendString(Segments()[seg]);
      cmc->Append<i64>(seg);
      ccc->AppendString(std::to_string(10 + nation));
      cccc->Append<i64>(10 + nation);
      cc->AppendString(MakeComment(&rng, 6, 12));
    }
    t->set_row_count(n_customer);
    data->customer = data->catalog.AddTable(std::move(t));
  }

  // ---- part ----
  std::vector<f64> retail_price(n_part + 1);
  {
    auto t = std::make_unique<Table>("part");
    Column* pk = t->AddColumn("p_partkey", PhysicalType::kI64);
    Column* pn = t->AddColumn("p_name", PhysicalType::kStr);
    Column* pm = t->AddColumn("p_mfgr", PhysicalType::kStr);
    Column* pb = t->AddColumn("p_brand", PhysicalType::kStr);
    Column* pbc = t->AddColumn("p_brand_code", PhysicalType::kI64);
    Column* pt = t->AddColumn("p_type", PhysicalType::kStr);
    Column* ptc = t->AddColumn("p_type_code", PhysicalType::kI64);
    Column* ps = t->AddColumn("p_size", PhysicalType::kI64);
    Column* pc = t->AddColumn("p_container", PhysicalType::kStr);
    Column* pcc = t->AddColumn("p_container_code", PhysicalType::kI64);
    Column* pr = t->AddColumn("p_retailprice", PhysicalType::kF64);
    Column* pcm = t->AddColumn("p_comment", PhysicalType::kStr);
    for (size_t i = 1; i <= n_part; ++i) {
      const int mfgr = 1 + static_cast<int>(rng.NextBounded(5));
      int brand_code = 0;
      const std::string brand = MakeBrand(&rng, &brand_code);
      const int t1 = static_cast<int>(rng.NextBounded(6));
      const int t2 = static_cast<int>(rng.NextBounded(5));
      const int t3 = static_cast<int>(rng.NextBounded(5));
      const int c1 = static_cast<int>(rng.NextBounded(5));
      const int c2 = static_cast<int>(rng.NextBounded(8));
      const f64 price =
          (90000.0 + static_cast<f64>((i / 10) % 20001) +
           100.0 * static_cast<f64>(i % 1000)) /
          100.0;
      retail_price[i] = price;
      pk->Append<i64>(static_cast<i64>(i));
      pn->AppendString(MakePartName(&rng));
      pm->AppendString("Manufacturer#" + std::to_string(mfgr));
      pb->AppendString(brand);
      pbc->Append<i64>(brand_code);
      pt->AppendString(TypeSyllable1()[t1] + " " + TypeSyllable2()[t2] +
                       " " + TypeSyllable3()[t3]);
      ptc->Append<i64>(t1 * 25 + t2 * 5 + t3);
      ps->Append<i64>(1 + static_cast<i64>(rng.NextBounded(50)));
      pc->AppendString(ContainerSyllable1()[c1] + " " +
                       ContainerSyllable2()[c2]);
      pcc->Append<i64>(c1 * 8 + c2);
      pr->Append<f64>(price);
      pcm->AppendString(MakeComment(&rng, 3, 8));
    }
    t->set_row_count(n_part);
    data->part = data->catalog.AddTable(std::move(t));
  }

  // ---- partsupp ----
  std::vector<f64> supply_cost(n_part * 4);
  {
    auto t = std::make_unique<Table>("partsupp");
    Column* pk = t->AddColumn("ps_partkey", PhysicalType::kI64);
    Column* sk = t->AddColumn("ps_suppkey", PhysicalType::kI64);
    Column* key = t->AddColumn("ps_pskey", PhysicalType::kI64);
    Column* aq = t->AddColumn("ps_availqty", PhysicalType::kI64);
    Column* aqf = t->AddColumn("ps_availqty_f", PhysicalType::kF64);
    Column* sc = t->AddColumn("ps_supplycost", PhysicalType::kF64);
    Column* cm = t->AddColumn("ps_comment", PhysicalType::kStr);
    size_t row = 0;
    for (size_t p = 1; p <= n_part; ++p) {
      for (int s = 0; s < 4; ++s) {
        // The spec's supplier spreading formula, reduced to our counts.
        const i64 supp =
            1 + static_cast<i64>((p + s * (n_supplier / 4 + 1)) %
                                 n_supplier);
        const f64 cost =
            1.0 + static_cast<f64>(rng.NextRange(0, 99900)) / 100.0;
        supply_cost[row++] = cost;
        const i64 avail = 1 + static_cast<i64>(rng.NextBounded(9999));
        pk->Append<i64>(static_cast<i64>(p));
        sk->Append<i64>(supp);
        key->Append<i64>(static_cast<i64>(p) * 100000 + supp);
        aq->Append<i64>(avail);
        aqf->Append<f64>(static_cast<f64>(avail));
        sc->Append<f64>(cost);
        cm->AppendString(MakeComment(&rng, 4, 10));
      }
    }
    t->set_row_count(n_part * 4);
    data->partsupp = data->catalog.AddTable(std::move(t));
  }

  // ---- orders + lineitem (clustered by o_orderdate) ----
  {
    std::vector<i64> order_dates(n_orders);
    for (auto& d : order_dates) {
      d = kStart + static_cast<i64>(rng.NextBounded(
                       static_cast<u64>(kEnd - kStart - 151)));
    }
    std::sort(order_dates.begin(), order_dates.end());

    auto ot = std::make_unique<Table>("orders");
    Column* ok = ot->AddColumn("o_orderkey", PhysicalType::kI64);
    Column* ock = ot->AddColumn("o_custkey", PhysicalType::kI64);
    Column* os = ot->AddColumn("o_orderstatus", PhysicalType::kStr);
    Column* osc = ot->AddColumn("o_orderstatus_code", PhysicalType::kI64);
    Column* otp = ot->AddColumn("o_totalprice", PhysicalType::kF64);
    Column* od = ot->AddColumn("o_orderdate", PhysicalType::kI64);
    Column* oy = ot->AddColumn("o_orderyear", PhysicalType::kI64);
    Column* op = ot->AddColumn("o_orderpriority", PhysicalType::kStr);
    Column* opc =
        ot->AddColumn("o_orderpriority_code", PhysicalType::kI64);
    Column* osp = ot->AddColumn("o_shippriority", PhysicalType::kI64);
    Column* ocm = ot->AddColumn("o_comment", PhysicalType::kStr);

    auto lt = std::make_unique<Table>("lineitem");
    Column* lok = lt->AddColumn("l_orderkey", PhysicalType::kI64);
    Column* lpk = lt->AddColumn("l_partkey", PhysicalType::kI64);
    Column* lsk = lt->AddColumn("l_suppkey", PhysicalType::kI64);
    Column* lps = lt->AddColumn("l_pskey", PhysicalType::kI64);
    Column* lln = lt->AddColumn("l_linenumber", PhysicalType::kI64);
    Column* lq = lt->AddColumn("l_quantity", PhysicalType::kI64);
    Column* lqf = lt->AddColumn("l_quantity_f", PhysicalType::kF64);
    Column* lep = lt->AddColumn("l_extendedprice", PhysicalType::kF64);
    Column* ld = lt->AddColumn("l_discount", PhysicalType::kF64);
    Column* ltx = lt->AddColumn("l_tax", PhysicalType::kF64);
    Column* lrf = lt->AddColumn("l_returnflag", PhysicalType::kStr);
    Column* lrfc = lt->AddColumn("l_returnflag_code", PhysicalType::kI64);
    Column* lls = lt->AddColumn("l_linestatus", PhysicalType::kStr);
    Column* llsc = lt->AddColumn("l_linestatus_code", PhysicalType::kI64);
    Column* lsd = lt->AddColumn("l_shipdate", PhysicalType::kI64);
    Column* lsy = lt->AddColumn("l_shipyear", PhysicalType::kI64);
    Column* lcd = lt->AddColumn("l_commitdate", PhysicalType::kI64);
    Column* lrd = lt->AddColumn("l_receiptdate", PhysicalType::kI64);
    Column* lsi = lt->AddColumn("l_shipinstruct", PhysicalType::kStr);
    Column* lsic =
        lt->AddColumn("l_shipinstruct_code", PhysicalType::kI64);
    Column* lsm = lt->AddColumn("l_shipmode", PhysicalType::kStr);
    Column* lsmc = lt->AddColumn("l_shipmode_code", PhysicalType::kI64);
    Column* lcm = lt->AddColumn("l_comment", PhysicalType::kStr);

    // Year of a day number: bucket against the 1992..1999 boundaries.
    i64 year_start[9];
    for (int y = 0; y < 9; ++y) year_start[y] = Date(1992 + y, 1, 1);
    auto year_of = [&year_start](i64 day) {
      int y = 0;
      while (y < 8 && day >= year_start[y + 1]) ++y;
      return static_cast<i64>(1992 + y);
    };

    size_t line_rows = 0;
    static const char* kFlags[2] = {"R", "A"};
    for (size_t o = 0; o < n_orders; ++o) {
      const i64 okey = static_cast<i64>(o + 1);
      const i64 odate = order_dates[o];
      const int n_lines = 1 + static_cast<int>(rng.NextBounded(7));
      f64 total = 0;
      int n_f = 0, n_o = 0;
      for (int l = 0; l < n_lines; ++l) {
        const i64 part =
            1 + static_cast<i64>(rng.NextBounded(n_part));
        const int s = static_cast<int>(rng.NextBounded(4));
        const i64 supp =
            1 + static_cast<i64>(
                    (static_cast<size_t>(part) + s * (n_supplier / 4 + 1)) %
                    n_supplier);
        const i64 qty = 1 + static_cast<i64>(rng.NextBounded(50));
        const f64 eprice =
            static_cast<f64>(qty) * retail_price[static_cast<size_t>(part)];
        const f64 disc =
            static_cast<f64>(rng.NextBounded(11)) / 100.0;  // 0.00..0.10
        const f64 tax =
            static_cast<f64>(rng.NextBounded(9)) / 100.0;  // 0.00..0.08
        const i64 ship = odate + 1 + static_cast<i64>(rng.NextBounded(121));
        const i64 commit =
            odate + 30 + static_cast<i64>(rng.NextBounded(61));
        const i64 receipt = ship + 1 + static_cast<i64>(rng.NextBounded(30));
        const bool returnable = receipt <= kCutoff;
        const int rf = returnable
                           ? static_cast<int>(rng.NextBounded(2))
                           : 2;  // R/A else N
        const bool open = ship > kCutoff;
        open ? ++n_o : ++n_f;
        const int si = static_cast<int>(rng.NextBounded(4));
        const int sm = static_cast<int>(rng.NextBounded(7));
        total += eprice * (1.0 - disc) * (1.0 + tax);

        lok->Append<i64>(okey);
        lpk->Append<i64>(part);
        lsk->Append<i64>(supp);
        lps->Append<i64>(part * 100000 + supp);
        lln->Append<i64>(l + 1);
        lq->Append<i64>(qty);
        lqf->Append<f64>(static_cast<f64>(qty));
        lep->Append<f64>(eprice);
        ld->Append<f64>(disc);
        ltx->Append<f64>(tax);
        lrf->AppendString(rf == 2 ? "N" : kFlags[rf]);
        lrfc->Append<i64>(rf);
        lls->AppendString(open ? "O" : "F");
        llsc->Append<i64>(open ? 1 : 0);
        lsd->Append<i64>(ship);
        lsy->Append<i64>(year_of(ship));
        lcd->Append<i64>(commit);
        lrd->Append<i64>(receipt);
        lsi->AppendString(ShipInstructs()[si]);
        lsic->Append<i64>(si);
        lsm->AppendString(ShipModes()[sm]);
        lsmc->Append<i64>(sm);
        lcm->AppendString(MakeComment(&rng, 3, 8));
        ++line_rows;
      }
      const int status = n_o == 0 ? 0 : (n_f == 0 ? 1 : 2);  // F,O,P
      static const char* kStatus[3] = {"F", "O", "P"};
      const int prio = static_cast<int>(rng.NextBounded(5));
      ok->Append<i64>(okey);
      ock->Append<i64>(
          1 + static_cast<i64>(rng.NextBounded(n_customer)));
      os->AppendString(kStatus[status]);
      osc->Append<i64>(status);
      otp->Append<f64>(total);
      od->Append<i64>(odate);
      oy->Append<i64>(year_of(odate));
      op->AppendString(Priorities()[prio]);
      opc->Append<i64>(prio);
      osp->Append<i64>(0);
      ocm->AppendString(MakeComment(&rng, 5, 12, "special requests",
                                    config.phrase_prob));
    }
    ot->set_row_count(n_orders);
    lt->set_row_count(line_rows);
    data->orders = data->catalog.AddTable(std::move(ot));
    data->lineitem = data->catalog.AddTable(std::move(lt));
  }

  (void)supply_cost;
  return data;
}

}  // namespace ma::tpch
