#include "tpch/plans.h"

#include "plan/plan_builder.h"
#include "tpch/text_pool.h"

namespace ma::tpch {
namespace {

using plan::PlanBuilder;
using Out = ProjectOperator::Output;
using Agg = HashAggOperator::AggSpec;
using GK = HashAggOperator::GroupKey;

/// revenue = l_extendedprice * (1 - l_discount), written without a
/// literal on the left: ep - ep*disc.
ExprPtr Revenue() {
  return Sub(Col("l_extendedprice"),
             Mul(Col("l_extendedprice"), Col("l_discount")));
}

Agg MakeAgg(const char* fn, ExprPtr arg, const char* out_name) {
  Agg a;
  a.fn = fn;
  a.arg = std::move(arg);
  a.out_name = out_name;
  return a;
}

/// Key of a nation by name.
i64 NationCode(const std::string& name) {
  const int c = CodeOf(NationNames(), name);
  MA_CHECK(c >= 0);
  return c;
}

/// Region -> member nations (semi join over the tiny metadata tables);
/// the returned builder's schema is the nation scan's.
PlanBuilder NationsOfRegion(const TpchData& d, const std::string& region,
                            const std::string& label) {
  PlanBuilder rsel =
      PlanBuilder::Scan(d.region, {"r_regionkey", "r_name"},
                        label + "/region_scan");
  rsel.Filter(StrEq("r_name", region), label + "/region");
  HashJoinSpec spec;
  spec.build_key = "r_regionkey";
  spec.probe_key = "n_regionkey";
  spec.kind = HashJoinSpec::Kind::kSemi;
  PlanBuilder nations = PlanBuilder::Scan(
      d.nation, {"n_nationkey", "n_name", "n_regionkey"},
      label + "/nation_scan");
  nations.HashJoin(std::move(rsel), spec, label + "/nation_of_region");
  return nations;
}

}  // namespace

plan::LogicalPlan Q1Plan(const TpchData& d) {
  std::vector<Out> outs;
  outs.push_back({"l_returnflag", Col("l_returnflag")});
  outs.push_back({"l_linestatus", Col("l_linestatus")});
  outs.push_back({"l_returnflag_code", Col("l_returnflag_code")});
  outs.push_back({"l_linestatus_code", Col("l_linestatus_code")});
  outs.push_back({"l_quantity", Col("l_quantity")});
  outs.push_back({"l_quantity_f", Col("l_quantity_f")});
  outs.push_back({"l_extendedprice", Col("l_extendedprice")});
  outs.push_back({"l_discount", Col("l_discount")});
  outs.push_back({"disc_price", Revenue()});
  // charge = disc_price * (1 + tax) = disc_price + disc_price * tax.
  auto disc_price = Revenue();
  outs.push_back(
      {"charge", Add(Revenue(), Mul(std::move(disc_price), Col("l_tax")))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("l_quantity"), "sum_qty"));
  aggs.push_back(MakeAgg("sum", Col("l_extendedprice"), "sum_base_price"));
  aggs.push_back(MakeAgg("sum", Col("disc_price"), "sum_disc_price"));
  aggs.push_back(MakeAgg("sum", Col("charge"), "sum_charge"));
  aggs.push_back(MakeAgg("avg", Col("l_quantity_f"), "avg_qty"));
  aggs.push_back(MakeAgg("avg", Col("l_extendedprice"), "avg_price"));
  aggs.push_back(MakeAgg("avg", Col("l_discount"), "avg_disc"));
  aggs.push_back(MakeAgg("count", nullptr, "count_order"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_quantity", "l_quantity_f",
                            "l_extendedprice", "l_discount", "l_tax",
                            "l_returnflag", "l_returnflag_code",
                            "l_linestatus", "l_linestatus_code",
                            "l_shipdate"},
                           "q1/scan")
      .Filter(Le(Col("l_shipdate"), Lit(Date(1998, 12, 1) - 90)),
              "q1/select")
      .Project(std::move(outs), "q1/project")
      .GroupBy({GK{"l_returnflag_code", 3}, GK{"l_linestatus_code", 2}},
               {"l_returnflag", "l_linestatus"}, std::move(aggs), "q1/agg")
      .Sort({{"l_returnflag", false}, {"l_linestatus", false}})
      .Build();
}

plan::LogicalPlan Q3Plan(const TpchData& d) {
  const i64 cutoff = Date(1995, 3, 15);
  PlanBuilder cust = PlanBuilder::Scan(
      d.customer, {"c_custkey", "c_mktsegment_code"}, "q3/customer_scan");
  cust.Filter(Eq(Col("c_mktsegment_code"),
                 Lit(CodeOf(Segments(), "BUILDING"))),
              "q3/customer");

  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.kind = HashJoinSpec::Kind::kSemi;
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey", "o_orderdate",
                 "o_shippriority"},
      "q3/orders_scan");
  orders.Filter(Lt(Col("o_orderdate"), Lit(cutoff)), "q3/orders")
      .HashJoin(std::move(cust), cj, "q3/orders_customer");

  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_orderdate", "o_orderdate"},
                      {"o_shippriority", "o_shippriority"}};
  oj.probe_outputs = {"l_orderkey", "l_extendedprice", "l_discount"};
  oj.use_bloom = true;

  std::vector<Out> outs;
  outs.push_back({"l_orderkey", Col("l_orderkey")});
  outs.push_back({"o_orderdate", Col("o_orderdate")});
  outs.push_back({"o_shippriority", Col("o_shippriority")});
  outs.push_back({"revenue", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_orderkey", "l_extendedprice", "l_discount",
                            "l_shipdate"},
                           "q3/lineitem_scan")
      .Filter(Gt(Col("l_shipdate"), Lit(cutoff)), "q3/lineitem")
      .HashJoin(std::move(orders), oj, "q3/join")
      .Project(std::move(outs), "q3/project")
      .GroupBy({GK{"l_orderkey", 36}, GK{"o_orderdate", 13},
                GK{"o_shippriority", 2}},
               {"l_orderkey", "o_orderdate", "o_shippriority"},
               std::move(aggs), "q3/agg")
      .Sort({{"revenue", true}, {"o_orderdate", false}}, 10)
      .Build();
}

plan::LogicalPlan Q4Plan(const TpchData& d) {
  PlanBuilder late = PlanBuilder::Scan(
      d.lineitem, {"l_orderkey", "l_commitdate", "l_receiptdate"},
      "q4/lineitem_scan");
  late.Filter(Lt(Col("l_commitdate"), Col("l_receiptdate")),
              "q4/late_lines");

  HashJoinSpec spec;
  spec.build_key = "l_orderkey";
  spec.probe_key = "o_orderkey";
  spec.kind = HashJoinSpec::Kind::kSemi;

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("count", nullptr, "order_count"));

  return PlanBuilder::Scan(d.orders,
                           {"o_orderkey", "o_orderdate", "o_orderpriority",
                            "o_orderpriority_code"},
                           "q4/orders_scan")
      .Filter(RangeI64("o_orderdate", Date(1993, 7, 1), Date(1993, 10, 1)),
              "q4/orders")
      .HashJoin(std::move(late), spec, "q4/exists")
      .GroupBy({GK{"o_orderpriority_code", 3}}, {"o_orderpriority"},
               std::move(aggs), "q4/agg")
      .Sort({{"o_orderpriority", false}})
      .Build();
}

plan::LogicalPlan Q5Plan(const TpchData& d) {
  // Asian suppliers with nation names; the build key encodes
  // (suppkey, nationkey) so the final join enforces c_nationkey ==
  // s_nationkey.
  HashJoinSpec sn;
  sn.build_key = "n_nationkey";
  sn.probe_key = "s_nationkey";
  sn.build_outputs = {{"n_name", "n_name"}};
  sn.probe_outputs = {"s_suppkey", "s_nationkey"};
  PlanBuilder supp = PlanBuilder::Scan(
      d.supplier, {"s_suppkey", "s_nationkey"}, "q5/supplier_scan");
  supp.HashJoin(NationsOfRegion(d, "ASIA", "q5"), sn,
                "q5/supplier_nation");
  std::vector<Out> souts;
  souts.push_back({"s_supp_nation",
                   Add(Mul(Col("s_suppkey"), Lit(32)),
                       Col("s_nationkey"))});
  souts.push_back({"s_nationkey", Col("s_nationkey")});
  souts.push_back({"n_name", Col("n_name")});
  supp.Project(std::move(souts), "q5/supp_key");

  // Orders of 1994 with the customer nation attached.
  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_nationkey", "c_nationkey"}};
  cj.probe_outputs = {"o_orderkey"};
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey", "o_orderdate"},
      "q5/orders_scan");
  orders
      .Filter(RangeI64("o_orderdate", Date(1994, 1, 1), Date(1995, 1, 1)),
              "q5/orders")
      .HashJoin(PlanBuilder::Scan(d.customer,
                                  {"c_custkey", "c_nationkey"},
                                  "q5/customer_scan"),
                cj, "q5/orders_customer");

  HashJoinSpec lj;
  lj.build_key = "o_orderkey";
  lj.probe_key = "l_orderkey";
  lj.build_outputs = {{"c_nationkey", "c_nationkey"}};
  lj.probe_outputs = {"l_suppkey", "l_extendedprice", "l_discount"};
  lj.use_bloom = true;

  std::vector<Out> louts;
  louts.push_back({"l_supp_nation",
                   Add(Mul(Col("l_suppkey"), Lit(32)),
                       Col("c_nationkey"))});
  louts.push_back({"l_extendedprice", Col("l_extendedprice")});
  louts.push_back({"l_discount", Col("l_discount")});

  HashJoinSpec fj;
  fj.build_key = "s_supp_nation";
  fj.probe_key = "l_supp_nation";
  fj.build_outputs = {{"n_name", "n_name"},
                      {"s_nationkey", "s_nationkey"}};
  fj.probe_outputs = {"l_extendedprice", "l_discount"};
  fj.use_bloom = true;

  std::vector<Out> outs;
  outs.push_back({"s_nationkey", Col("s_nationkey")});
  outs.push_back({"n_name", Col("n_name")});
  outs.push_back({"revenue", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_orderkey", "l_suppkey", "l_extendedprice",
                            "l_discount"},
                           "q5/lineitem_scan")
      .HashJoin(std::move(orders), lj, "q5/join_lineitem")
      .Project(std::move(louts), "q5/items_key")
      .HashJoin(std::move(supp), fj, "q5/final_join")
      .Project(std::move(outs), "q5/project")
      .GroupBy({GK{"s_nationkey", 5}}, {"n_name"}, std::move(aggs),
               "q5/agg")
      .Sort({{"revenue", true}})
      .Build();
}

plan::LogicalPlan Q6Plan(const TpchData& d) {
  std::vector<ExprPtr> preds;
  preds.push_back(Ge(Col("l_shipdate"), Lit(Date(1994, 1, 1))));
  preds.push_back(Lt(Col("l_shipdate"), Lit(Date(1995, 1, 1))));
  preds.push_back(Ge(Col("l_discount"), Lit(0.05)));
  preds.push_back(Le(Col("l_discount"), Lit(0.07)));
  preds.push_back(Lt(Col("l_quantity"), Lit(24)));

  std::vector<Out> outs;
  outs.push_back(
      {"revenue", Mul(Col("l_extendedprice"), Col("l_discount"))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_shipdate", "l_discount", "l_quantity",
                            "l_extendedprice"},
                           "q6/scan")
      .Filter(AndAll(std::move(preds)), "q6/select")
      .Project(std::move(outs), "q6/project")
      .GroupBy({}, {}, std::move(aggs), "q6/agg")
      .Build();
}

plan::LogicalPlan Q7Plan(const TpchData& d) {
  const i64 fr = NationCode("FRANCE");
  const i64 de = NationCode("GERMANY");

  // Orders annotated with customer nation (FRANCE or GERMANY only).
  // The hash probe emits matches in probe order, so o_orderkey stays
  // ascending into the merge join below.
  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_nationkey", "cust_nation_code"}};
  cj.probe_outputs = {"o_orderkey"};
  cj.use_bloom = true;
  PlanBuilder cust = PlanBuilder::Scan(
      d.customer, {"c_custkey", "c_nationkey"}, "q7/customer_scan");
  cust.Filter(InI64("c_nationkey", {fr, de}), "q7/customer");
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey"}, "q7/orders_scan");
  orders.HashJoin(std::move(cust), cj, "q7/orders_customer");

  // Lineitems shipped 1995-1996; merge join with the annotated orders
  // on the orderkey — Figure 4(c)'s mergejoin instance.
  MergeJoinSpec mj;
  mj.left_key = "o_orderkey";
  mj.right_key = "l_orderkey";
  mj.left_outputs = {{"cust_nation_code", "cust_nation_code"}};
  mj.right_outputs = {{"l_suppkey", "l_suppkey"},
                      {"l_extendedprice", "l_extendedprice"},
                      {"l_discount", "l_discount"},
                      {"l_shipyear", "l_shipyear"}};
  PlanBuilder items = PlanBuilder::Scan(
      d.lineitem,
      {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount",
       "l_shipdate", "l_shipyear"},
      "q7/lineitem_scan");
  items.Filter(RangeI64("l_shipdate", Date(1995, 1, 1), Date(1997, 1, 1)),
               "q7/lineitem");
  orders.MergeJoin(std::move(items), mj, "q7/mergejoin");

  // Attach supplier nation.
  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_nationkey", "supp_nation_code"}};
  sj.probe_outputs = {"cust_nation_code", "l_extendedprice", "l_discount",
                      "l_shipyear"};
  sj.use_bloom = true;
  PlanBuilder supp = PlanBuilder::Scan(
      d.supplier, {"s_suppkey", "s_nationkey"}, "q7/supplier_scan");
  supp.Filter(InI64("s_nationkey", {fr, de}), "q7/supplier");
  orders.HashJoin(std::move(supp), sj, "q7/supplier_join");

  // (supp=FR and cust=DE) or (supp=DE and cust=FR).
  std::vector<ExprPtr> c1;
  c1.push_back(Eq(Col("supp_nation_code"), Lit(fr)));
  c1.push_back(Eq(Col("cust_nation_code"), Lit(de)));
  std::vector<ExprPtr> c2;
  c2.push_back(Eq(Col("supp_nation_code"), Lit(de)));
  c2.push_back(Eq(Col("cust_nation_code"), Lit(fr)));
  std::vector<ExprPtr> either;
  either.push_back(AndAll(std::move(c1)));
  either.push_back(AndAll(std::move(c2)));

  std::vector<Out> outs;
  outs.push_back({"supp_nation_code", Col("supp_nation_code")});
  outs.push_back({"cust_nation_code", Col("cust_nation_code")});
  outs.push_back({"l_shipyear", Col("l_shipyear")});
  outs.push_back({"volume", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("volume"), "revenue"));

  return orders.Filter(OrAny(std::move(either)), "q7/nation_pair")
      .Project(std::move(outs), "q7/project")
      .GroupBy({GK{"supp_nation_code", 5}, GK{"cust_nation_code", 5},
                GK{"l_shipyear", 11}},
               {"supp_nation_code", "cust_nation_code", "l_shipyear"},
               std::move(aggs), "q7/agg")
      .Sort({{"supp_nation_code", false},
             {"cust_nation_code", false},
             {"l_shipyear", false}})
      .Build();
}

plan::LogicalPlan Q10Plan(const TpchData& d) {
  // Per-customer revenue over returned items of Q4-1993 orders: the
  // aggregation feeds the customer/nation joins above it, so the staged
  // compiler materializes it and re-scans the intermediate.
  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_custkey", "o_custkey"}};
  oj.probe_outputs = {"l_extendedprice", "l_discount"};
  oj.use_bloom = true;
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey", "o_orderdate"},
      "q10/orders_scan");
  orders.Filter(
      RangeI64("o_orderdate", Date(1993, 10, 1), Date(1994, 1, 1)),
      "q10/orders");

  std::vector<Out> outs;
  outs.push_back({"o_custkey", Col("o_custkey")});
  outs.push_back({"revenue", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_name", "c_name"},
                      {"c_acctbal", "c_acctbal"},
                      {"c_nationkey", "c_nationkey"},
                      {"c_phone", "c_phone"},
                      {"c_address", "c_address"},
                      {"c_comment", "c_comment"}};
  cj.probe_outputs = {"o_custkey", "revenue"};

  HashJoinSpec nj;
  nj.build_key = "n_nationkey";
  nj.probe_key = "c_nationkey";
  nj.build_outputs = {{"n_name", "n_name"}};
  nj.probe_outputs = {"o_custkey", "c_name", "revenue", "c_acctbal",
                      "c_phone", "c_address", "c_comment"};

  return PlanBuilder::Scan(d.lineitem,
                           {"l_orderkey", "l_extendedprice", "l_discount",
                            "l_returnflag_code"},
                           "q10/lineitem_scan")
      .Filter(InI64("l_returnflag_code", {0, 1}),  // 'R' or 'A'
              "q10/returned")
      .HashJoin(std::move(orders), oj, "q10/join")
      .Project(std::move(outs), "q10/project")
      .GroupBy({GK{"o_custkey", 32}}, {"o_custkey"}, std::move(aggs),
               "q10/agg")
      .HashJoin(PlanBuilder::Scan(d.customer,
                                  {"c_custkey", "c_name", "c_acctbal",
                                   "c_nationkey", "c_phone", "c_address",
                                   "c_comment"},
                                  "q10/customer_scan"),
                cj, "q10/customer_join")
      .HashJoin(PlanBuilder::Scan(d.nation, {"n_nationkey", "n_name"},
                                  "q10/nation_scan"),
                nj, "q10/nation_join")
      .Sort({{"revenue", true}}, 20)
      .Build();
}

namespace {

/// Q12's filtered lineitems (MAIL/SHIP, the date sandwich), right side
/// of the merge join with orders on the clustered orderkey.
PlanBuilder Q12Items(const TpchData& d, const std::string& label) {
  std::vector<ExprPtr> preds;
  preds.push_back(InI64("l_shipmode_code",
                        {CodeOf(ShipModes(), "MAIL"),
                         CodeOf(ShipModes(), "SHIP")}));
  preds.push_back(Lt(Col("l_commitdate"), Col("l_receiptdate")));
  preds.push_back(Lt(Col("l_shipdate"), Col("l_commitdate")));
  preds.push_back(Ge(Col("l_receiptdate"), Lit(Date(1994, 1, 1))));
  preds.push_back(Lt(Col("l_receiptdate"), Lit(Date(1995, 1, 1))));
  PlanBuilder items = PlanBuilder::Scan(
      d.lineitem,
      {"l_orderkey", "l_shipmode", "l_shipmode_code", "l_shipdate",
       "l_commitdate", "l_receiptdate"},
      label + "_scan");
  items.Filter(AndAll(std::move(preds)), label);
  return items;
}

}  // namespace

plan::LogicalPlan Q12Plan(const TpchData& d) {
  // high = lines of URGENT/HIGH orders per shipmode: merge join with
  // orders on the (ascending, order-proven) orderkey, filter on the
  // fetched priority, count. Becomes the build side.
  MergeJoinSpec mj;
  mj.left_key = "o_orderkey";
  mj.right_key = "l_orderkey";
  mj.left_outputs = {{"o_orderpriority_code", "o_orderpriority_code"}};
  mj.right_outputs = {{"l_shipmode_code", "l_shipmode_code"}};
  std::vector<Agg> ha;
  ha.push_back(MakeAgg("count", nullptr, "high_line_count"));
  PlanBuilder high = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_orderpriority_code"}, "q12/orders_scan");
  high.MergeJoin(Q12Items(d, "q12/select_high"), mj, "q12/mergejoin")
      .Filter(Le(Col("o_orderpriority_code"), Lit(1)), "q12/high")
      .GroupBy({GK{"l_shipmode_code", 3}}, {"l_shipmode_code"},
               std::move(ha), "q12/high_agg");

  // all = every filtered line per shipmode (the FK merge join keeps
  // each line exactly once, so counting the filter output directly is
  // equivalent); probes the high-count build.
  std::vector<Agg> ta;
  ta.push_back(MakeAgg("count", nullptr, "all_count"));

  HashJoinSpec fj;
  fj.build_key = "l_shipmode_code";
  fj.probe_key = "l_shipmode_code";
  fj.build_outputs = {{"high_line_count", "high_line_count"}};
  fj.probe_outputs = {"l_shipmode", "all_count"};

  std::vector<Out> outs;
  outs.push_back({"l_shipmode", Col("l_shipmode")});
  outs.push_back({"high_line_count", Col("high_line_count")});
  outs.push_back({"low_line_count",
                  Sub(Col("all_count"), Col("high_line_count"))});

  return Q12Items(d, "q12/select")
      .GroupBy({GK{"l_shipmode_code", 3}},
               {"l_shipmode", "l_shipmode_code"}, std::move(ta),
               "q12/all_agg")
      .HashJoin(std::move(high), fj, "q12/final_join")
      .Project(std::move(outs), "q12/final")
      .Sort({{"l_shipmode", false}})
      .Build();
}

plan::LogicalPlan Q2Plan(const TpchData& d) {
  // The joined (partsupp x filtered part x European supplier) table.
  // Plans are trees, so the pipeline is built once per use: once under
  // the per-part min aggregation and once as the probe of the
  // min-filter join (same duplication as Q14's base; a shared-subplan
  // node would remove it — ROADMAP).
  auto joined = [&d](const std::string& label) {
    HashJoinSpec sj;
    sj.build_key = "n_nationkey";
    sj.probe_key = "s_nationkey";
    sj.build_outputs = {{"n_name", "n_name"}};
    sj.probe_outputs = {"s_suppkey", "s_name", "s_address", "s_phone",
                        "s_acctbal", "s_comment"};
    PlanBuilder supp = PlanBuilder::Scan(
        d.supplier,
        {"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal",
         "s_comment", "s_nationkey"},
        label + "/supplier_scan");
    supp.HashJoin(NationsOfRegion(d, "EUROPE", label), sj,
                  label + "/supplier_nation");

    std::vector<ExprPtr> pp;
    pp.push_back(Eq(Col("p_size"), Lit(15)));
    pp.push_back(StrSuffix("p_type", "BRASS"));
    PlanBuilder part = PlanBuilder::Scan(
        d.part, {"p_partkey", "p_mfgr", "p_size", "p_type"},
        label + "/part_scan");
    part.Filter(AndAll(std::move(pp)), label + "/part");

    HashJoinSpec pj;
    pj.build_key = "p_partkey";
    pj.probe_key = "ps_partkey";
    pj.build_outputs = {{"p_mfgr", "p_mfgr"}};
    pj.probe_outputs = {"ps_partkey", "ps_suppkey", "ps_supplycost"};
    pj.use_bloom = true;  // most partsupp rows miss the filtered parts
    PlanBuilder ps = PlanBuilder::Scan(
        d.partsupp, {"ps_partkey", "ps_suppkey", "ps_supplycost"},
        label + "/partsupp_scan");
    ps.HashJoin(std::move(part), pj, label + "/partsupp_part");

    HashJoinSpec ssj;
    ssj.build_key = "s_suppkey";
    ssj.probe_key = "ps_suppkey";
    ssj.build_outputs = {{"s_name", "s_name"},       {"n_name", "n_name"},
                         {"s_address", "s_address"}, {"s_phone", "s_phone"},
                         {"s_acctbal", "s_acctbal"},
                         {"s_comment", "s_comment"}};
    ssj.probe_outputs = {"ps_partkey", "ps_supplycost", "p_mfgr"};
    ps.HashJoin(std::move(supp), ssj, label + "/supplier_partsupp");
    return ps;
  };

  std::vector<Agg> ma;
  ma.push_back(MakeAgg("min", Col("ps_supplycost"), "min_cost"));
  PlanBuilder mins = joined("q2/min");
  mins.GroupBy({GK{"ps_partkey", 40}}, {"ps_partkey"}, std::move(ma),
               "q2/min_agg");

  HashJoinSpec mj;
  mj.build_key = "ps_partkey";
  mj.probe_key = "ps_partkey";
  mj.build_outputs = {{"min_cost", "min_cost"}};
  mj.probe_outputs = {"ps_partkey", "ps_supplycost", "p_mfgr", "s_name",
                      "n_name",     "s_address",     "s_phone",
                      "s_acctbal",  "s_comment"};

  return joined("q2")
      .HashJoin(std::move(mins), mj, "q2/min_join")
      .Filter(Eq(Col("ps_supplycost"), Col("min_cost")), "q2/min_filter")
      .Sort({{"s_acctbal", true},
             {"n_name", false},
             {"s_name", false},
             {"ps_partkey", false}},
            100)
      .Build();
}

plan::LogicalPlan Q11Plan(const TpchData& d) {
  // German partsupp rows with value = cost * availqty, used by both the
  // per-part aggregation and the threshold subquery.
  auto base = [&d](const std::string& label) {
    PlanBuilder supp = PlanBuilder::Scan(
        d.supplier, {"s_suppkey", "s_nationkey"},
        label + "/supplier_scan");
    supp.Filter(Eq(Col("s_nationkey"), Lit(NationCode("GERMANY"))),
                label + "/s_nation");
    HashJoinSpec sj;
    sj.build_key = "s_suppkey";
    sj.probe_key = "ps_suppkey";
    sj.kind = HashJoinSpec::Kind::kSemi;
    PlanBuilder ps = PlanBuilder::Scan(
        d.partsupp,
        {"ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty_f"},
        label + "/partsupp_scan");
    ps.HashJoin(std::move(supp), sj, label + "/partsupp_semi");
    std::vector<Out> outs;
    outs.push_back({"ps_partkey", Col("ps_partkey")});
    outs.push_back(
        {"value", Mul(Col("ps_supplycost"), Col("ps_availqty_f"))});
    ps.Project(std::move(outs), label + "/project");
    return ps;
  };

  // threshold = sum(value) * 0.0001 — a scalar subquery folded into the
  // HAVING predicate below.
  std::vector<Agg> ta;
  ta.push_back(MakeAgg("sum", Col("value"), "total"));
  PlanBuilder sub = base("q11/total");
  sub.GroupBy({}, {}, std::move(ta), "q11/total_agg");
  std::vector<Out> th;
  th.push_back({"threshold", Mul(Col("total"), Lit(0.0001))});
  sub.Project(std::move(th), "q11/threshold");

  std::vector<Agg> pa;
  pa.push_back(MakeAgg("sum", Col("value"), "value"));
  return base("q11")
      .GroupBy({GK{"ps_partkey", 40}}, {"ps_partkey"}, std::move(pa),
               "q11/agg")
      .BindScalar("q11_threshold", std::move(sub), "threshold")
      .Filter(Gt(Col("value"), ScalarRef("q11_threshold")), "q11/having")
      .Sort({{"value", true}})
      .Build();
}

plan::LogicalPlan Q13Plan(const TpchData& d) {
  // Orders without "special requests" counted per customer; the LEFT
  // OUTER join patches customers with no such orders back in with a
  // default c_count of 0, replacing the hand-assembled zero bucket.
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_custkey", "o_comment"}, "q13/orders_scan");
  std::vector<Agg> ca;
  ca.push_back(MakeAgg("count", nullptr, "c_count"));
  orders
      .Filter(StrNotContains("o_comment", "special requests"),
              "q13/orders")
      .GroupBy({GK{"o_custkey", 32}}, {"o_custkey"}, std::move(ca),
               "q13/per_cust");

  HashJoinSpec lj;
  lj.build_key = "o_custkey";
  lj.probe_key = "c_custkey";
  lj.kind = HashJoinSpec::Kind::kLeftOuter;
  lj.build_outputs = {{"c_count", "c_count"}};
  // No probe outputs: only the (possibly patched) count feeds the
  // histogram.

  std::vector<Agg> ha;
  ha.push_back(MakeAgg("count", nullptr, "custdist"));
  return PlanBuilder::Scan(d.customer, {"c_custkey"}, "q13/customer_scan")
      .HashJoin(std::move(orders), lj, "q13/cust_orders")
      .GroupBy({GK{"c_count", 16}}, {"c_count"}, std::move(ha), "q13/hist")
      .Sort({{"custdist", true}, {"c_count", true}})
      .Build();
}

plan::LogicalPlan Q15Plan(const TpchData& d) {
  // Revenue per supplier over Q1-1996 shipments.
  auto rev = [&d](const std::string& label) {
    PlanBuilder b = PlanBuilder::Scan(
        d.lineitem,
        {"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"},
        label + "/lineitem_scan");
    std::vector<Out> outs;
    outs.push_back({"l_suppkey", Col("l_suppkey")});
    outs.push_back({"revenue", Revenue()});
    std::vector<Agg> aggs;
    aggs.push_back(MakeAgg("sum", Col("revenue"), "total_revenue"));
    b.Filter(RangeI64("l_shipdate", Date(1996, 1, 1), Date(1996, 4, 1)),
             label + "/select")
        .Project(std::move(outs), label + "/project")
        .GroupBy({GK{"l_suppkey", 24}}, {"l_suppkey"}, std::move(aggs),
                 label + "/agg");
    return b;
  };

  // The top revenue — a scalar subquery folded into the filter (ties
  // all survive, as in the reference SQL's = (select max(...))).
  std::vector<Agg> ma;
  ma.push_back(MakeAgg("max", Col("total_revenue"), "max_revenue"));
  PlanBuilder sub = rev("q15/max");
  sub.GroupBy({}, {}, std::move(ma), "q15/max_agg");

  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_name", "s_name"},
                      {"s_address", "s_address"},
                      {"s_phone", "s_phone"}};
  sj.probe_outputs = {"l_suppkey", "total_revenue"};

  return rev("q15")
      .BindScalar("q15_max", std::move(sub), "max_revenue")
      .Filter(Ge(Col("total_revenue"), ScalarRef("q15_max")), "q15/top")
      .HashJoin(PlanBuilder::Scan(d.supplier,
                                  {"s_suppkey", "s_name", "s_address",
                                   "s_phone"},
                                  "q15/supplier_scan"),
                sj, "q15/supplier_join")
      .Sort({{"l_suppkey", false}})
      .Build();
}

plan::LogicalPlan Q17Plan(const TpchData& d) {
  // Lineitems of the selected brand/container parts.
  auto base = [&d](const std::string& label) {
    std::vector<ExprPtr> pp;
    pp.push_back(Eq(Col("p_brand_code"), Lit((2 - 1) * 5 + (3 - 1))));
    pp.push_back(Eq(Col("p_container_code"),
                    Lit(CodeOf(ContainerSyllable1(), "MED") * 8 +
                        CodeOf(ContainerSyllable2(), "BOX"))));
    PlanBuilder part = PlanBuilder::Scan(
        d.part, {"p_partkey", "p_brand_code", "p_container_code"},
        label + "/part_scan");
    part.Filter(AndAll(std::move(pp)), label + "/part");
    HashJoinSpec pj;
    pj.build_key = "p_partkey";
    pj.probe_key = "l_partkey";
    pj.probe_outputs = {"l_partkey", "l_quantity_f", "l_extendedprice"};
    pj.use_bloom = true;
    PlanBuilder li = PlanBuilder::Scan(
        d.lineitem, {"l_partkey", "l_quantity_f", "l_extendedprice"},
        label + "/lineitem_scan");
    li.HashJoin(std::move(part), pj, label + "/join");
    return li;
  };

  // Per-part average quantity, joined back against the same pipeline
  // (the agg-feeding-join shape; the threshold computes above it).
  std::vector<Agg> aa;
  aa.push_back(MakeAgg("avg", Col("l_quantity_f"), "avg_qty"));
  PlanBuilder avgs = base("q17/avg");
  avgs.GroupBy({GK{"l_partkey", 40}}, {"l_partkey"}, std::move(aa),
               "q17/avg_agg");

  HashJoinSpec bj;
  bj.build_key = "l_partkey";
  bj.probe_key = "l_partkey";
  bj.build_outputs = {{"avg_qty", "avg_qty"}};
  bj.probe_outputs = {"l_quantity_f", "l_extendedprice"};

  std::vector<Out> touts;
  touts.push_back({"l_quantity_f", Col("l_quantity_f")});
  touts.push_back({"l_extendedprice", Col("l_extendedprice")});
  touts.push_back({"threshold", Mul(Col("avg_qty"), Lit(0.2))});

  std::vector<Agg> sa;
  sa.push_back(MakeAgg("sum", Col("l_extendedprice"), "total"));

  std::vector<Out> fouts;
  fouts.push_back({"avg_yearly", Div(Col("total"), Lit(7.0))});

  return base("q17")
      .HashJoin(std::move(avgs), bj, "q17/back_join")
      .Project(std::move(touts), "q17/threshold")
      .Filter(Lt(Col("l_quantity_f"), Col("threshold")),
              "q17/small_orders")
      .GroupBy({}, {}, std::move(sa), "q17/sum")
      .Project(std::move(fouts), "q17/final")
      .Build();
}

plan::LogicalPlan Q22Plan(const TpchData& d) {
  const std::vector<i64> codes = {13, 31, 23, 29, 30, 18, 17};
  // Customers of the selected country codes; the country-code *string*
  // is computed from the phone prefix with a substring projection (the
  // reference SQL's substring(c_phone from 1 for 2)).
  auto cust = [&d, &codes](const std::string& label) {
    PlanBuilder b = PlanBuilder::Scan(
        d.customer,
        {"c_custkey", "c_acctbal", "c_phone", "c_cntrycode_code"},
        label + "/customer_scan");
    b.Filter(InI64("c_cntrycode_code", codes), label + "/cust");
    std::vector<Out> outs;
    outs.push_back({"c_custkey", Col("c_custkey")});
    outs.push_back({"c_acctbal", Col("c_acctbal")});
    outs.push_back({"c_cntrycode_code", Col("c_cntrycode_code")});
    outs.push_back({"c_cntrycode", Substr(Col("c_phone"), 0, 2)});
    b.Project(std::move(outs), label + "/project");
    return b;
  };

  // Average positive balance — the scalar threshold for "rich".
  std::vector<Agg> aa;
  aa.push_back(MakeAgg("avg", Col("c_acctbal"), "avg_bal"));
  PlanBuilder sub = cust("q22/avg");
  sub.Filter(Gt(Col("c_acctbal"), Lit(0.0)), "q22/positive")
      .GroupBy({}, {}, std::move(aa), "q22/avg_agg");

  HashJoinSpec aj;
  aj.build_key = "o_custkey";
  aj.probe_key = "c_custkey";
  aj.kind = HashJoinSpec::Kind::kAnti;

  std::vector<Agg> fa;
  fa.push_back(MakeAgg("count", nullptr, "numcust"));
  fa.push_back(MakeAgg("sum", Col("c_acctbal"), "totacctbal"));

  return cust("q22")
      .BindScalar("q22_avg", std::move(sub), "avg_bal")
      .Filter(Gt(Col("c_acctbal"), ScalarRef("q22_avg")), "q22/rich")
      .HashJoin(PlanBuilder::Scan(d.orders, {"o_custkey"},
                                  "q22/orders_scan"),
                aj, "q22/no_orders")
      .GroupBy({GK{"c_cntrycode_code", 6}}, {"c_cntrycode"},
               std::move(fa), "q22/agg")
      .Sort({{"c_cntrycode", false}})
      .Build();
}

plan::LogicalPlan Q14Plan(const TpchData& d) {
  // promo and total revenue are both single-group aggregates; grouping
  // them on a constant key ("one") makes the pair joinable, and the
  // share computes in the projection above the join — no scalar
  // post-processing outside the plan.
  //
  // Plans are trees, so the shipdate-filter + part-join pipeline below
  // both aggregates is built (and executed) once per side. The old
  // hand-built query shared one temp table instead; recovering that
  // sharing needs common-subplan nodes in the plan layer (ROADMAP).
  auto base = [&d](const std::string& label) {
    HashJoinSpec pj;
    pj.build_key = "p_partkey";
    pj.probe_key = "l_partkey";
    pj.build_outputs = {{"p_type_code", "p_type_code"}};
    pj.probe_outputs = {"l_extendedprice", "l_discount"};
    std::vector<Out> outs;
    outs.push_back({"p_type_code", Col("p_type_code")});
    outs.push_back({"revenue", Revenue()});
    outs.push_back({"one", Add(Mul(Col("p_type_code"), Lit(0)), Lit(1))});
    PlanBuilder b = PlanBuilder::Scan(
        d.lineitem,
        {"l_partkey", "l_extendedprice", "l_discount", "l_shipdate"},
        label + "/lineitem_scan");
    b.Filter(RangeI64("l_shipdate", Date(1995, 9, 1), Date(1995, 10, 1)),
             label + "/select")
        .HashJoin(PlanBuilder::Scan(d.part, {"p_partkey", "p_type_code"},
                                    label + "/part_scan"),
                  pj, label + "/part_join")
        .Project(std::move(outs), label + "/project");
    return b;
  };

  // PROMO types occupy type codes [promo_lo, promo_lo + 25).
  const i64 promo_lo = CodeOf(TypeSyllable1(), "PROMO") * 25;
  std::vector<Agg> pa;
  pa.push_back(MakeAgg("sum", Col("revenue"), "promo"));
  PlanBuilder promo = base("q14/promo");
  promo
      .Filter(RangeI64("p_type_code", promo_lo, promo_lo + 25),
              "q14/promo_filter")
      .GroupBy({GK{"one", 1}}, {"one"}, std::move(pa), "q14/promo_agg");

  std::vector<Agg> ta;
  ta.push_back(MakeAgg("sum", Col("revenue"), "total"));

  HashJoinSpec fj;
  fj.build_key = "one";
  fj.probe_key = "one";
  fj.build_outputs = {{"promo", "promo"}};
  fj.probe_outputs = {"total"};

  std::vector<Out> outs;
  outs.push_back({"promo_revenue",
                  Div(Mul(Col("promo"), Lit(100.0)), Col("total"))});

  return base("q14")
      .GroupBy({GK{"one", 1}}, {"one"}, std::move(ta), "q14/total_agg")
      .HashJoin(std::move(promo), fj, "q14/share_join")
      .Project(std::move(outs), "q14/share")
      .Build();
}

plan::LogicalPlan Q8Plan(const TpchData& d) {
  // The hand-built tree aggregated total and BRAZIL volume separately
  // and joined the two single-column results; as a plan, one CASE
  // projection zeroes non-BRAZIL volume so a single aggregation carries
  // both sums and the share divides in the projection above it.
  const i64 steel = CodeOf(TypeSyllable1(), "ECONOMY") * 25 +
                    CodeOf(TypeSyllable2(), "ANODIZED") * 5 +
                    CodeOf(TypeSyllable3(), "STEEL");
  PlanBuilder part = PlanBuilder::Scan(
      d.part, {"p_partkey", "p_type_code"}, "q8/part_scan");
  part.Filter(Eq(Col("p_type_code"), Lit(steel)), "q8/part");
  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "l_partkey";
  pj.probe_outputs = {"l_orderkey", "l_suppkey", "l_extendedprice",
                      "l_discount"};
  pj.use_bloom = true;

  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey", "o_orderdate", "o_orderyear"},
      "q8/orders_scan");
  orders.Filter(
      RangeI64("o_orderdate", Date(1995, 1, 1), Date(1997, 1, 1)),
      "q8/orders");
  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_custkey", "o_custkey"},
                      {"o_orderyear", "o_orderyear"}};
  oj.probe_outputs = {"l_suppkey", "l_extendedprice", "l_discount"};
  oj.use_bloom = true;

  // Customers in AMERICA; orders of other customers drop in a semi.
  HashJoinSpec cn;
  cn.build_key = "n_nationkey";
  cn.probe_key = "c_nationkey";
  cn.kind = HashJoinSpec::Kind::kSemi;
  PlanBuilder cust = PlanBuilder::Scan(
      d.customer, {"c_custkey", "c_nationkey"}, "q8/customer_scan");
  cust.HashJoin(NationsOfRegion(d, "AMERICA", "q8"), cn,
                "q8/customer_region");
  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.kind = HashJoinSpec::Kind::kSemi;

  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_nationkey", "supp_nation_code"}};
  sj.probe_outputs = {"o_orderyear", "l_extendedprice", "l_discount"};

  std::vector<Out> vouts;
  vouts.push_back({"o_orderyear", Col("o_orderyear")});
  vouts.push_back({"volume", Revenue()});
  vouts.push_back(
      {"brazil_volume",
       Case(Eq(Col("supp_nation_code"), Lit(NationCode("BRAZIL"))),
            Revenue(), Lit(0.0))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("volume"), "total"));
  aggs.push_back(MakeAgg("sum", Col("brazil_volume"), "brazil"));

  std::vector<Out> fouts;
  fouts.push_back({"o_orderyear", Col("o_orderyear")});
  fouts.push_back({"mkt_share", Div(Col("brazil"), Col("total"))});

  return PlanBuilder::Scan(d.lineitem,
                           {"l_partkey", "l_orderkey", "l_suppkey",
                            "l_extendedprice", "l_discount"},
                           "q8/lineitem_scan")
      .HashJoin(std::move(part), pj, "q8/part_join")
      .HashJoin(std::move(orders), oj, "q8/orders_join")
      .HashJoin(std::move(cust), cj, "q8/customer_semi")
      .HashJoin(PlanBuilder::Scan(d.supplier,
                                  {"s_suppkey", "s_nationkey"},
                                  "q8/supplier_scan"),
                sj, "q8/supplier_join")
      .Project(std::move(vouts), "q8/volume")
      .GroupBy({GK{"o_orderyear", 11}}, {"o_orderyear"}, std::move(aggs),
               "q8/agg")
      .Project(std::move(fouts), "q8/share")
      .Sort({{"o_orderyear", false}})
      .Build();
}

plan::LogicalPlan Q9Plan(const TpchData& d) {
  PlanBuilder part = PlanBuilder::Scan(
      d.part, {"p_partkey", "p_name"}, "q9/part_scan");
  part.Filter(StrContains("p_name", "green"), "q9/part");
  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "l_partkey";
  pj.probe_outputs = {"l_orderkey", "l_suppkey", "l_pskey",
                      "l_quantity_f", "l_extendedprice", "l_discount"};
  pj.use_bloom = true;

  HashJoinSpec psj;
  psj.build_key = "ps_pskey";
  psj.probe_key = "l_pskey";
  psj.build_outputs = {{"ps_supplycost", "ps_supplycost"}};
  psj.probe_outputs = {"l_orderkey", "l_suppkey", "l_quantity_f",
                       "l_extendedprice", "l_discount"};

  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_orderyear", "o_orderyear"}};
  oj.probe_outputs = {"l_suppkey", "l_quantity_f", "l_extendedprice",
                      "l_discount", "ps_supplycost"};

  // supplier -> nation name, then onto every line.
  HashJoinSpec nj;
  nj.build_key = "n_nationkey";
  nj.probe_key = "s_nationkey";
  nj.build_outputs = {{"n_name", "n_name"}};
  nj.probe_outputs = {"s_suppkey", "s_nationkey"};
  PlanBuilder supp = PlanBuilder::Scan(
      d.supplier, {"s_suppkey", "s_nationkey"}, "q9/supplier_scan");
  supp.HashJoin(PlanBuilder::Scan(d.nation, {"n_nationkey", "n_name"},
                                  "q9/nation_scan"),
                nj, "q9/supplier_nation");
  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_nationkey", "s_nationkey"},
                      {"n_name", "n_name"}};
  sj.probe_outputs = {"o_orderyear", "l_quantity_f", "l_extendedprice",
                      "l_discount", "ps_supplycost"};

  std::vector<Out> outs;
  outs.push_back({"s_nationkey", Col("s_nationkey")});
  outs.push_back({"n_name", Col("n_name")});
  outs.push_back({"o_orderyear", Col("o_orderyear")});
  outs.push_back({"amount",
                  Sub(Revenue(),
                      Mul(Col("ps_supplycost"), Col("l_quantity_f")))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("amount"), "sum_profit"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_partkey", "l_orderkey", "l_suppkey",
                            "l_pskey", "l_quantity_f", "l_extendedprice",
                            "l_discount"},
                           "q9/lineitem_scan")
      .HashJoin(std::move(part), pj, "q9/part_join")
      .HashJoin(PlanBuilder::Scan(d.partsupp,
                                  {"ps_pskey", "ps_supplycost"},
                                  "q9/partsupp_scan"),
                psj, "q9/partsupp_join")
      .HashJoin(PlanBuilder::Scan(d.orders, {"o_orderkey", "o_orderyear"},
                                  "q9/orders_scan"),
                oj, "q9/orders_join")
      .HashJoin(std::move(supp), sj, "q9/supplier_join")
      .Project(std::move(outs), "q9/project")
      .GroupBy({GK{"s_nationkey", 5}, GK{"o_orderyear", 11}},
               {"n_name", "o_orderyear"}, std::move(aggs), "q9/agg")
      .Sort({{"n_name", false}, {"o_orderyear", true}})
      .Build();
}

plan::LogicalPlan Q16Plan(const TpchData& d) {
  // Distinct suppliers per (brand, type, size): the dedupe aggregation
  // feeds a re-aggregation that counts its groups — the agg-over-agg
  // shape (staged: two dependent aggregate stages).
  std::vector<ExprPtr> pp;
  pp.push_back(Ne(Col("p_brand_code"),
                  Lit((4 - 1) * 5 + (5 - 1))));  // Brand#45
  pp.push_back(StrNotPrefix("p_type", "MEDIUM POLISHED"));
  pp.push_back(InI64("p_size", {49, 14, 23, 45, 19, 3, 36, 9}));
  PlanBuilder part = PlanBuilder::Scan(
      d.part,
      {"p_partkey", "p_brand", "p_brand_code", "p_type", "p_type_code",
       "p_size"},
      "q16/part_scan");
  part.Filter(AndAll(std::move(pp)), "q16/part");
  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "ps_partkey";
  pj.build_outputs = {{"p_brand", "p_brand"},
                      {"p_brand_code", "p_brand_code"},
                      {"p_type", "p_type"},
                      {"p_type_code", "p_type_code"},
                      {"p_size", "p_size"}};
  pj.probe_outputs = {"ps_suppkey"};
  pj.use_bloom = true;

  // Suppliers with complaints drop in an anti join.
  PlanBuilder bad = PlanBuilder::Scan(
      d.supplier, {"s_suppkey", "s_comment"}, "q16/supplier_scan");
  bad.Filter(StrContains("s_comment", "Customer Complaints"),
             "q16/complaints");
  HashJoinSpec aj;
  aj.build_key = "s_suppkey";
  aj.probe_key = "ps_suppkey";
  aj.kind = HashJoinSpec::Kind::kAnti;

  std::vector<Agg> da;
  da.push_back(MakeAgg("count", nullptr, "dummy"));
  std::vector<Agg> ca;
  ca.push_back(MakeAgg("count", nullptr, "supplier_cnt"));

  return PlanBuilder::Scan(d.partsupp, {"ps_partkey", "ps_suppkey"},
                           "q16/partsupp_scan")
      .HashJoin(std::move(part), pj, "q16/partsupp_join")
      .HashJoin(std::move(bad), aj, "q16/anti")
      .GroupBy({GK{"p_brand_code", 5}, GK{"p_type_code", 8},
                GK{"p_size", 6}, GK{"ps_suppkey", 24}},
               {"p_brand", "p_type", "p_size", "p_brand_code",
                "p_type_code"},
               std::move(da), "q16/dedupe")
      .GroupBy({GK{"p_brand_code", 5}, GK{"p_type_code", 8},
                GK{"p_size", 6}},
               {"p_brand", "p_type", "p_size"}, std::move(ca),
               "q16/count")
      .Sort({{"supplier_cnt", true},
             {"p_brand", false},
             {"p_type", false},
             {"p_size", false}})
      .Build();
}

plan::LogicalPlan Q18Plan(const TpchData& d) {
  // Orders above 300 total quantity: the per-order quantity aggregation
  // (i64 sum, inferred from l_quantity) builds the orders join.
  std::vector<Agg> qa;
  qa.push_back(MakeAgg("sum", Col("l_quantity"), "sum_qty"));
  PlanBuilder big = PlanBuilder::Scan(
      d.lineitem, {"l_orderkey", "l_quantity"}, "q18/lineitem_scan");
  big.GroupBy({GK{"l_orderkey", 36}}, {"l_orderkey"}, std::move(qa),
              "q18/agg")
      .Filter(Gt(Col("sum_qty"), Lit(300)), "q18/having");

  HashJoinSpec oj;
  oj.build_key = "l_orderkey";
  oj.probe_key = "o_orderkey";
  oj.build_outputs = {{"sum_qty", "sum_qty"}};
  oj.probe_outputs = {"o_orderkey", "o_custkey", "o_orderdate",
                      "o_totalprice"};
  oj.use_bloom = true;

  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_name", "c_name"}};
  cj.probe_outputs = {"o_custkey", "o_orderkey", "o_orderdate",
                      "o_totalprice", "sum_qty"};

  return PlanBuilder::Scan(d.orders,
                           {"o_orderkey", "o_custkey", "o_orderdate",
                            "o_totalprice"},
                           "q18/orders_scan")
      .HashJoin(std::move(big), oj, "q18/orders_join")
      .HashJoin(PlanBuilder::Scan(d.customer, {"c_custkey", "c_name"},
                                  "q18/customer_scan"),
                cj, "q18/customer_join")
      .Sort({{"o_totalprice", true}, {"o_orderdate", false}}, 100)
      .Build();
}

plan::LogicalPlan Q19Plan(const TpchData& d) {
  std::vector<ExprPtr> lp;
  lp.push_back(InI64("l_shipmode_code", {CodeOf(ShipModes(), "AIR"),
                                         CodeOf(ShipModes(),
                                                "REG AIR")}));
  lp.push_back(Eq(Col("l_shipinstruct_code"),
                  Lit(CodeOf(ShipInstructs(), "DELIVER IN PERSON"))));

  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "l_partkey";
  pj.build_outputs = {{"p_brand_code", "p_brand_code"},
                      {"p_container_code", "p_container_code"},
                      {"p_size", "p_size"}};
  pj.probe_outputs = {"l_quantity", "l_extendedprice", "l_discount"};

  auto container_codes = [](std::vector<std::pair<const char*,
                                                  const char*>> pairs) {
    std::vector<i64> codes;
    for (const auto& [a, b] : pairs) {
      codes.push_back(CodeOf(ContainerSyllable1(), a) * 8 +
                      CodeOf(ContainerSyllable2(), b));
    }
    return codes;
  };
  auto branch = [](int brand_m, int brand_n, std::vector<i64> containers,
                   i64 qty_lo, i64 qty_hi, i64 size_hi) {
    std::vector<ExprPtr> preds;
    preds.push_back(Eq(Col("p_brand_code"),
                       Lit((brand_m - 1) * 5 + (brand_n - 1))));
    preds.push_back(InI64("p_container_code", std::move(containers)));
    preds.push_back(Ge(Col("l_quantity"), Lit(qty_lo)));
    preds.push_back(Le(Col("l_quantity"), Lit(qty_hi)));
    preds.push_back(Ge(Col("p_size"), Lit(i64{1})));
    preds.push_back(Le(Col("p_size"), Lit(size_hi)));
    return AndAll(std::move(preds));
  };
  std::vector<ExprPtr> branches;
  branches.push_back(branch(
      1, 2,
      container_codes({{"SM", "CASE"}, {"SM", "BOX"}, {"SM", "PACK"},
                       {"SM", "PKG"}}),
      1, 11, 5));
  branches.push_back(branch(
      2, 3,
      container_codes({{"MED", "BAG"}, {"MED", "BOX"}, {"MED", "PKG"},
                       {"MED", "PACK"}}),
      10, 20, 10));
  branches.push_back(branch(
      3, 4,
      container_codes({{"LG", "CASE"}, {"LG", "BOX"}, {"LG", "PACK"},
                       {"LG", "PKG"}}),
      20, 30, 15));

  std::vector<Out> outs;
  outs.push_back({"revenue", Revenue()});
  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_partkey", "l_quantity", "l_extendedprice",
                            "l_discount", "l_shipmode_code",
                            "l_shipinstruct_code"},
                           "q19/lineitem_scan")
      .Filter(AndAll(std::move(lp)), "q19/lineitem")
      .HashJoin(PlanBuilder::Scan(d.part,
                                  {"p_partkey", "p_brand_code",
                                   "p_container_code", "p_size"},
                                  "q19/part_scan"),
                pj, "q19/join")
      .Filter(OrAny(std::move(branches)), "q19/or_filter")
      .Project(std::move(outs), "q19/project")
      .GroupBy({}, {}, std::move(aggs), "q19/agg")
      .Build();
}

plan::LogicalPlan Q20Plan(const TpchData& d) {
  // Quantity shipped in 1994 per (part, supplier) builds the partsupp
  // join; availqty > half the shipped quantity marks excess stock.
  std::vector<Agg> sa;
  sa.push_back(MakeAgg("sum", Col("l_quantity_f"), "sum_qty"));
  PlanBuilder qty = PlanBuilder::Scan(
      d.lineitem, {"l_pskey", "l_quantity_f", "l_shipdate"},
      "q20/lineitem_scan");
  qty.Filter(RangeI64("l_shipdate", Date(1994, 1, 1), Date(1995, 1, 1)),
             "q20/shipped")
      .GroupBy({GK{"l_pskey", 48}}, {"l_pskey"}, std::move(sa),
               "q20/qty_agg");

  HashJoinSpec qj;
  qj.build_key = "l_pskey";
  qj.probe_key = "ps_pskey";
  qj.build_outputs = {{"sum_qty", "sum_qty"}};
  qj.probe_outputs = {"ps_partkey", "ps_suppkey", "ps_availqty_f"};

  std::vector<Out> houts;
  houts.push_back({"ps_partkey", Col("ps_partkey")});
  houts.push_back({"ps_suppkey", Col("ps_suppkey")});
  houts.push_back({"ps_availqty_f", Col("ps_availqty_f")});
  houts.push_back({"half_qty", Mul(Col("sum_qty"), Lit(0.5))});

  // Restrict to forest% parts, dedupe the surviving supplier keys.
  PlanBuilder part = PlanBuilder::Scan(
      d.part, {"p_partkey", "p_name"}, "q20/part_scan");
  part.Filter(StrPrefix("p_name", "forest"), "q20/part");
  HashJoinSpec fj;
  fj.build_key = "p_partkey";
  fj.probe_key = "ps_partkey";
  fj.kind = HashJoinSpec::Kind::kSemi;

  std::vector<Agg> da;
  da.push_back(MakeAgg("count", nullptr, "dummy"));
  PlanBuilder keys = PlanBuilder::Scan(
      d.partsupp,
      {"ps_pskey", "ps_partkey", "ps_suppkey", "ps_availqty_f"},
      "q20/partsupp_scan");
  keys.HashJoin(std::move(qty), qj, "q20/qty_join")
      .Project(std::move(houts), "q20/half")
      .Filter(Gt(Col("ps_availqty_f"), Col("half_qty")), "q20/excess")
      .HashJoin(std::move(part), fj, "q20/forest_semi")
      .GroupBy({GK{"ps_suppkey", 24}}, {"ps_suppkey"}, std::move(da),
               "q20/dedupe");

  // CANADA suppliers among the deduped keys.
  HashJoinSpec sj;
  sj.build_key = "ps_suppkey";
  sj.probe_key = "s_suppkey";
  sj.kind = HashJoinSpec::Kind::kSemi;

  return PlanBuilder::Scan(d.supplier,
                           {"s_suppkey", "s_name", "s_address",
                            "s_nationkey"},
                           "q20/supplier_scan")
      .Filter(Eq(Col("s_nationkey"), Lit(NationCode("CANADA"))),
              "q20/s_nation")
      .HashJoin(std::move(keys), sj, "q20/supplier_semi")
      .Sort({{"s_name", false}})
      .Build();
}

plan::LogicalPlan Q21Plan(const TpchData& d) {
  // The late-lineitem filter (receipt past commit) feeds both the
  // per-order late-supplier count and the main spine — bound once as a
  // shared subplan, so every executor materializes it exactly once and
  // both consumers scan the same result (the DAG shape ARCHITECTURE.md
  // walks through).
  PlanBuilder late_b = PlanBuilder::Scan(
      d.lineitem,
      {"l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"},
      "q21/late_scan");
  late_b.Filter(Gt(Col("l_receiptdate"), Col("l_commitdate")),
                "q21/late");
  const plan::SharedSubplan late =
      PlanBuilder::BindShared("q21_late", std::move(late_b));

  // Distinct suppliers per order (all lines): agg-over-agg, with the
  // >= 2 filter making it the EXISTS-other-supplier semi build.
  std::vector<Agg> d1;
  d1.push_back(MakeAgg("count", nullptr, "dummy"));
  std::vector<Agg> c1;
  c1.push_back(MakeAgg("count", nullptr, "n_supp"));
  PlanBuilder n_supp = PlanBuilder::Scan(
      d.lineitem, {"l_orderkey", "l_suppkey"}, "q21/pairs_scan");
  n_supp
      .GroupBy({GK{"l_orderkey", 36}, GK{"l_suppkey", 24}},
               {"l_orderkey"}, std::move(d1), "q21/all_pairs")
      .GroupBy({GK{"l_orderkey", 36}}, {"l_orderkey"}, std::move(c1),
               "q21/supp_per_order")
      .Filter(Ge(Col("n_supp"), Lit(i64{2})), "q21/multi");

  // Distinct *late* suppliers per order over the shared late lines;
  // == 1 makes it the NOT-EXISTS-other-late-supplier semi build.
  std::vector<Agg> d2;
  d2.push_back(MakeAgg("count", nullptr, "dummy"));
  std::vector<Agg> c2;
  c2.push_back(MakeAgg("count", nullptr, "n_late_supp"));
  PlanBuilder n_late = PlanBuilder::SharedRef(late, "q21/late_pairs_ref");
  n_late
      .GroupBy({GK{"l_orderkey", 36}, GK{"l_suppkey", 24}},
               {"l_orderkey"}, std::move(d2), "q21/late_pairs")
      .GroupBy({GK{"l_orderkey", 36}}, {"l_orderkey"}, std::move(c2),
               "q21/late_per_order")
      .Filter(Eq(Col("n_late_supp"), Lit(i64{1})), "q21/single_late");

  PlanBuilder saudi = PlanBuilder::Scan(
      d.supplier, {"s_suppkey", "s_name", "s_nationkey"},
      "q21/supplier_scan");
  saudi.Filter(Eq(Col("s_nationkey"), Lit(NationCode("SAUDI ARABIA"))),
               "q21/s_nation");
  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_name", "s_name"}};
  sj.probe_outputs = {"l_orderkey", "l_suppkey"};
  sj.use_bloom = true;

  PlanBuilder orders_f = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_orderstatus_code"}, "q21/orders_scan");
  orders_f.Filter(Eq(Col("o_orderstatus_code"), Lit(i64{0})),
                  "q21/orders_f");
  HashJoinSpec ofj;
  ofj.build_key = "o_orderkey";
  ofj.probe_key = "l_orderkey";
  ofj.kind = HashJoinSpec::Kind::kSemi;

  HashJoinSpec mj;
  mj.build_key = "l_orderkey";
  mj.probe_key = "l_orderkey";
  mj.kind = HashJoinSpec::Kind::kSemi;
  HashJoinSpec lj;
  lj.build_key = "l_orderkey";
  lj.probe_key = "l_orderkey";
  lj.kind = HashJoinSpec::Kind::kSemi;

  std::vector<Agg> fa;
  fa.push_back(MakeAgg("count", nullptr, "numwait"));

  return PlanBuilder::SharedRef(late, "q21/late_ref")
      .HashJoin(std::move(saudi), sj, "q21/saudi_join")
      .HashJoin(std::move(orders_f), ofj, "q21/status_semi")
      .HashJoin(std::move(n_supp), mj, "q21/exists_semi")
      .HashJoin(std::move(n_late), lj, "q21/notexists_semi")
      .GroupBy({GK{"l_suppkey", 24}}, {"s_name"}, std::move(fa),
               "q21/agg")
      .Sort({{"numwait", true}, {"s_name", false}}, 100)
      .Build();
}

bool HasPlan(int q) {
  MA_CHECK(q >= 1 && q <= 22);
  return true;  // all 22 queries are plan-level ports now
}

plan::LogicalPlan PlanForQuery(const TpchData& d, int q) {
  switch (q) {
    case 1: return Q1Plan(d);
    case 2: return Q2Plan(d);
    case 3: return Q3Plan(d);
    case 4: return Q4Plan(d);
    case 5: return Q5Plan(d);
    case 6: return Q6Plan(d);
    case 7: return Q7Plan(d);
    case 8: return Q8Plan(d);
    case 9: return Q9Plan(d);
    case 10: return Q10Plan(d);
    case 11: return Q11Plan(d);
    case 12: return Q12Plan(d);
    case 13: return Q13Plan(d);
    case 14: return Q14Plan(d);
    case 15: return Q15Plan(d);
    case 16: return Q16Plan(d);
    case 17: return Q17Plan(d);
    case 18: return Q18Plan(d);
    case 19: return Q19Plan(d);
    case 20: return Q20Plan(d);
    case 21: return Q21Plan(d);
    case 22: return Q22Plan(d);
    default:
      MA_CHECK(false);  // caller gates on HasPlan(q)
      return plan::LogicalPlan{};
  }
}

}  // namespace ma::tpch
