#include "tpch/plans.h"

#include "plan/plan_builder.h"

namespace ma::tpch {
namespace {

using plan::PlanBuilder;
using Out = ProjectOperator::Output;
using Agg = HashAggOperator::AggSpec;
using GK = HashAggOperator::GroupKey;

/// revenue = l_extendedprice * (1 - l_discount), written without a
/// literal on the left: ep - ep*disc.
ExprPtr Revenue() {
  return Sub(Col("l_extendedprice"),
             Mul(Col("l_extendedprice"), Col("l_discount")));
}

Agg MakeAgg(const char* fn, ExprPtr arg, const char* out_name) {
  Agg a;
  a.fn = fn;
  a.arg = std::move(arg);
  a.out_name = out_name;
  return a;
}

}  // namespace

plan::LogicalPlan Q1Plan(const TpchData& d) {
  std::vector<Out> outs;
  outs.push_back({"l_returnflag", Col("l_returnflag")});
  outs.push_back({"l_linestatus", Col("l_linestatus")});
  outs.push_back({"l_returnflag_code", Col("l_returnflag_code")});
  outs.push_back({"l_linestatus_code", Col("l_linestatus_code")});
  outs.push_back({"l_quantity", Col("l_quantity")});
  outs.push_back({"l_quantity_f", Col("l_quantity_f")});
  outs.push_back({"l_extendedprice", Col("l_extendedprice")});
  outs.push_back({"l_discount", Col("l_discount")});
  outs.push_back({"disc_price", Revenue()});
  // charge = disc_price * (1 + tax) = disc_price + disc_price * tax.
  auto disc_price = Revenue();
  outs.push_back(
      {"charge", Add(Revenue(), Mul(std::move(disc_price), Col("l_tax")))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("l_quantity"), "sum_qty"));
  aggs.push_back(MakeAgg("sum", Col("l_extendedprice"), "sum_base_price"));
  aggs.push_back(MakeAgg("sum", Col("disc_price"), "sum_disc_price"));
  aggs.push_back(MakeAgg("sum", Col("charge"), "sum_charge"));
  aggs.push_back(MakeAgg("avg", Col("l_quantity_f"), "avg_qty"));
  aggs.push_back(MakeAgg("avg", Col("l_extendedprice"), "avg_price"));
  aggs.push_back(MakeAgg("avg", Col("l_discount"), "avg_disc"));
  aggs.push_back(MakeAgg("count", nullptr, "count_order"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_quantity", "l_quantity_f",
                            "l_extendedprice", "l_discount", "l_tax",
                            "l_returnflag", "l_returnflag_code",
                            "l_linestatus", "l_linestatus_code",
                            "l_shipdate"},
                           "q1/scan")
      .Filter(Le(Col("l_shipdate"), Lit(Date(1998, 12, 1) - 90)),
              "q1/select")
      .Project(std::move(outs), "q1/project")
      .GroupBy({GK{"l_returnflag_code", 3}, GK{"l_linestatus_code", 2}},
               {"l_returnflag", "l_linestatus"}, std::move(aggs), "q1/agg")
      .Sort({{"l_returnflag", false}, {"l_linestatus", false}})
      .Build();
}

plan::LogicalPlan Q6Plan(const TpchData& d) {
  std::vector<ExprPtr> preds;
  preds.push_back(Ge(Col("l_shipdate"), Lit(Date(1994, 1, 1))));
  preds.push_back(Lt(Col("l_shipdate"), Lit(Date(1995, 1, 1))));
  preds.push_back(Ge(Col("l_discount"), Lit(0.05)));
  preds.push_back(Le(Col("l_discount"), Lit(0.07)));
  preds.push_back(Lt(Col("l_quantity"), Lit(24)));

  std::vector<Out> outs;
  outs.push_back(
      {"revenue", Mul(Col("l_extendedprice"), Col("l_discount"))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_shipdate", "l_discount", "l_quantity",
                            "l_extendedprice"},
                           "q6/scan")
      .Filter(AndAll(std::move(preds)), "q6/select")
      .Project(std::move(outs), "q6/project")
      .GroupBy({}, {}, std::move(aggs), "q6/agg")
      .Build();
}

}  // namespace ma::tpch
