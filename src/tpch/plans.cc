#include "tpch/plans.h"

#include "plan/plan_builder.h"
#include "tpch/text_pool.h"

namespace ma::tpch {
namespace {

using plan::PlanBuilder;
using Out = ProjectOperator::Output;
using Agg = HashAggOperator::AggSpec;
using GK = HashAggOperator::GroupKey;

/// revenue = l_extendedprice * (1 - l_discount), written without a
/// literal on the left: ep - ep*disc.
ExprPtr Revenue() {
  return Sub(Col("l_extendedprice"),
             Mul(Col("l_extendedprice"), Col("l_discount")));
}

Agg MakeAgg(const char* fn, ExprPtr arg, const char* out_name) {
  Agg a;
  a.fn = fn;
  a.arg = std::move(arg);
  a.out_name = out_name;
  return a;
}

/// Key of a nation by name.
i64 NationCode(const std::string& name) {
  const int c = CodeOf(NationNames(), name);
  MA_CHECK(c >= 0);
  return c;
}

/// Region -> member nations (semi join over the tiny metadata tables);
/// the returned builder's schema is the nation scan's.
PlanBuilder NationsOfRegion(const TpchData& d, const std::string& region,
                            const std::string& label) {
  PlanBuilder rsel =
      PlanBuilder::Scan(d.region, {"r_regionkey", "r_name"},
                        label + "/region_scan");
  rsel.Filter(StrEq("r_name", region), label + "/region");
  HashJoinSpec spec;
  spec.build_key = "r_regionkey";
  spec.probe_key = "n_regionkey";
  spec.kind = HashJoinSpec::Kind::kSemi;
  PlanBuilder nations = PlanBuilder::Scan(
      d.nation, {"n_nationkey", "n_name", "n_regionkey"},
      label + "/nation_scan");
  nations.HashJoin(std::move(rsel), spec, label + "/nation_of_region");
  return nations;
}

}  // namespace

plan::LogicalPlan Q1Plan(const TpchData& d) {
  std::vector<Out> outs;
  outs.push_back({"l_returnflag", Col("l_returnflag")});
  outs.push_back({"l_linestatus", Col("l_linestatus")});
  outs.push_back({"l_returnflag_code", Col("l_returnflag_code")});
  outs.push_back({"l_linestatus_code", Col("l_linestatus_code")});
  outs.push_back({"l_quantity", Col("l_quantity")});
  outs.push_back({"l_quantity_f", Col("l_quantity_f")});
  outs.push_back({"l_extendedprice", Col("l_extendedprice")});
  outs.push_back({"l_discount", Col("l_discount")});
  outs.push_back({"disc_price", Revenue()});
  // charge = disc_price * (1 + tax) = disc_price + disc_price * tax.
  auto disc_price = Revenue();
  outs.push_back(
      {"charge", Add(Revenue(), Mul(std::move(disc_price), Col("l_tax")))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("l_quantity"), "sum_qty"));
  aggs.push_back(MakeAgg("sum", Col("l_extendedprice"), "sum_base_price"));
  aggs.push_back(MakeAgg("sum", Col("disc_price"), "sum_disc_price"));
  aggs.push_back(MakeAgg("sum", Col("charge"), "sum_charge"));
  aggs.push_back(MakeAgg("avg", Col("l_quantity_f"), "avg_qty"));
  aggs.push_back(MakeAgg("avg", Col("l_extendedprice"), "avg_price"));
  aggs.push_back(MakeAgg("avg", Col("l_discount"), "avg_disc"));
  aggs.push_back(MakeAgg("count", nullptr, "count_order"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_quantity", "l_quantity_f",
                            "l_extendedprice", "l_discount", "l_tax",
                            "l_returnflag", "l_returnflag_code",
                            "l_linestatus", "l_linestatus_code",
                            "l_shipdate"},
                           "q1/scan")
      .Filter(Le(Col("l_shipdate"), Lit(Date(1998, 12, 1) - 90)),
              "q1/select")
      .Project(std::move(outs), "q1/project")
      .GroupBy({GK{"l_returnflag_code", 3}, GK{"l_linestatus_code", 2}},
               {"l_returnflag", "l_linestatus"}, std::move(aggs), "q1/agg")
      .Sort({{"l_returnflag", false}, {"l_linestatus", false}})
      .Build();
}

plan::LogicalPlan Q3Plan(const TpchData& d) {
  const i64 cutoff = Date(1995, 3, 15);
  PlanBuilder cust = PlanBuilder::Scan(
      d.customer, {"c_custkey", "c_mktsegment_code"}, "q3/customer_scan");
  cust.Filter(Eq(Col("c_mktsegment_code"),
                 Lit(CodeOf(Segments(), "BUILDING"))),
              "q3/customer");

  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.kind = HashJoinSpec::Kind::kSemi;
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey", "o_orderdate",
                 "o_shippriority"},
      "q3/orders_scan");
  orders.Filter(Lt(Col("o_orderdate"), Lit(cutoff)), "q3/orders")
      .HashJoin(std::move(cust), cj, "q3/orders_customer");

  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_orderdate", "o_orderdate"},
                      {"o_shippriority", "o_shippriority"}};
  oj.probe_outputs = {"l_orderkey", "l_extendedprice", "l_discount"};
  oj.use_bloom = true;

  std::vector<Out> outs;
  outs.push_back({"l_orderkey", Col("l_orderkey")});
  outs.push_back({"o_orderdate", Col("o_orderdate")});
  outs.push_back({"o_shippriority", Col("o_shippriority")});
  outs.push_back({"revenue", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_orderkey", "l_extendedprice", "l_discount",
                            "l_shipdate"},
                           "q3/lineitem_scan")
      .Filter(Gt(Col("l_shipdate"), Lit(cutoff)), "q3/lineitem")
      .HashJoin(std::move(orders), oj, "q3/join")
      .Project(std::move(outs), "q3/project")
      .GroupBy({GK{"l_orderkey", 36}, GK{"o_orderdate", 13},
                GK{"o_shippriority", 2}},
               {"l_orderkey", "o_orderdate", "o_shippriority"},
               std::move(aggs), "q3/agg")
      .Sort({{"revenue", true}, {"o_orderdate", false}}, 10)
      .Build();
}

plan::LogicalPlan Q4Plan(const TpchData& d) {
  PlanBuilder late = PlanBuilder::Scan(
      d.lineitem, {"l_orderkey", "l_commitdate", "l_receiptdate"},
      "q4/lineitem_scan");
  late.Filter(Lt(Col("l_commitdate"), Col("l_receiptdate")),
              "q4/late_lines");

  HashJoinSpec spec;
  spec.build_key = "l_orderkey";
  spec.probe_key = "o_orderkey";
  spec.kind = HashJoinSpec::Kind::kSemi;

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("count", nullptr, "order_count"));

  return PlanBuilder::Scan(d.orders,
                           {"o_orderkey", "o_orderdate", "o_orderpriority",
                            "o_orderpriority_code"},
                           "q4/orders_scan")
      .Filter(RangeI64("o_orderdate", Date(1993, 7, 1), Date(1993, 10, 1)),
              "q4/orders")
      .HashJoin(std::move(late), spec, "q4/exists")
      .GroupBy({GK{"o_orderpriority_code", 3}}, {"o_orderpriority"},
               std::move(aggs), "q4/agg")
      .Sort({{"o_orderpriority", false}})
      .Build();
}

plan::LogicalPlan Q5Plan(const TpchData& d) {
  // Asian suppliers with nation names; the build key encodes
  // (suppkey, nationkey) so the final join enforces c_nationkey ==
  // s_nationkey.
  HashJoinSpec sn;
  sn.build_key = "n_nationkey";
  sn.probe_key = "s_nationkey";
  sn.build_outputs = {{"n_name", "n_name"}};
  sn.probe_outputs = {"s_suppkey", "s_nationkey"};
  PlanBuilder supp = PlanBuilder::Scan(
      d.supplier, {"s_suppkey", "s_nationkey"}, "q5/supplier_scan");
  supp.HashJoin(NationsOfRegion(d, "ASIA", "q5"), sn,
                "q5/supplier_nation");
  std::vector<Out> souts;
  souts.push_back({"s_supp_nation",
                   Add(Mul(Col("s_suppkey"), Lit(32)),
                       Col("s_nationkey"))});
  souts.push_back({"s_nationkey", Col("s_nationkey")});
  souts.push_back({"n_name", Col("n_name")});
  supp.Project(std::move(souts), "q5/supp_key");

  // Orders of 1994 with the customer nation attached.
  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_nationkey", "c_nationkey"}};
  cj.probe_outputs = {"o_orderkey"};
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey", "o_orderdate"},
      "q5/orders_scan");
  orders
      .Filter(RangeI64("o_orderdate", Date(1994, 1, 1), Date(1995, 1, 1)),
              "q5/orders")
      .HashJoin(PlanBuilder::Scan(d.customer,
                                  {"c_custkey", "c_nationkey"},
                                  "q5/customer_scan"),
                cj, "q5/orders_customer");

  HashJoinSpec lj;
  lj.build_key = "o_orderkey";
  lj.probe_key = "l_orderkey";
  lj.build_outputs = {{"c_nationkey", "c_nationkey"}};
  lj.probe_outputs = {"l_suppkey", "l_extendedprice", "l_discount"};
  lj.use_bloom = true;

  std::vector<Out> louts;
  louts.push_back({"l_supp_nation",
                   Add(Mul(Col("l_suppkey"), Lit(32)),
                       Col("c_nationkey"))});
  louts.push_back({"l_extendedprice", Col("l_extendedprice")});
  louts.push_back({"l_discount", Col("l_discount")});

  HashJoinSpec fj;
  fj.build_key = "s_supp_nation";
  fj.probe_key = "l_supp_nation";
  fj.build_outputs = {{"n_name", "n_name"},
                      {"s_nationkey", "s_nationkey"}};
  fj.probe_outputs = {"l_extendedprice", "l_discount"};
  fj.use_bloom = true;

  std::vector<Out> outs;
  outs.push_back({"s_nationkey", Col("s_nationkey")});
  outs.push_back({"n_name", Col("n_name")});
  outs.push_back({"revenue", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_orderkey", "l_suppkey", "l_extendedprice",
                            "l_discount"},
                           "q5/lineitem_scan")
      .HashJoin(std::move(orders), lj, "q5/join_lineitem")
      .Project(std::move(louts), "q5/items_key")
      .HashJoin(std::move(supp), fj, "q5/final_join")
      .Project(std::move(outs), "q5/project")
      .GroupBy({GK{"s_nationkey", 5}}, {"n_name"}, std::move(aggs),
               "q5/agg")
      .Sort({{"revenue", true}})
      .Build();
}

plan::LogicalPlan Q6Plan(const TpchData& d) {
  std::vector<ExprPtr> preds;
  preds.push_back(Ge(Col("l_shipdate"), Lit(Date(1994, 1, 1))));
  preds.push_back(Lt(Col("l_shipdate"), Lit(Date(1995, 1, 1))));
  preds.push_back(Ge(Col("l_discount"), Lit(0.05)));
  preds.push_back(Le(Col("l_discount"), Lit(0.07)));
  preds.push_back(Lt(Col("l_quantity"), Lit(24)));

  std::vector<Out> outs;
  outs.push_back(
      {"revenue", Mul(Col("l_extendedprice"), Col("l_discount"))});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  return PlanBuilder::Scan(d.lineitem,
                           {"l_shipdate", "l_discount", "l_quantity",
                            "l_extendedprice"},
                           "q6/scan")
      .Filter(AndAll(std::move(preds)), "q6/select")
      .Project(std::move(outs), "q6/project")
      .GroupBy({}, {}, std::move(aggs), "q6/agg")
      .Build();
}

plan::LogicalPlan Q7Plan(const TpchData& d) {
  const i64 fr = NationCode("FRANCE");
  const i64 de = NationCode("GERMANY");

  // Orders annotated with customer nation (FRANCE or GERMANY only).
  // The hash probe emits matches in probe order, so o_orderkey stays
  // ascending into the merge join below.
  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_nationkey", "cust_nation_code"}};
  cj.probe_outputs = {"o_orderkey"};
  cj.use_bloom = true;
  PlanBuilder cust = PlanBuilder::Scan(
      d.customer, {"c_custkey", "c_nationkey"}, "q7/customer_scan");
  cust.Filter(InI64("c_nationkey", {fr, de}), "q7/customer");
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey"}, "q7/orders_scan");
  orders.HashJoin(std::move(cust), cj, "q7/orders_customer");

  // Lineitems shipped 1995-1996; merge join with the annotated orders
  // on the orderkey — Figure 4(c)'s mergejoin instance.
  MergeJoinSpec mj;
  mj.left_key = "o_orderkey";
  mj.right_key = "l_orderkey";
  mj.left_outputs = {{"cust_nation_code", "cust_nation_code"}};
  mj.right_outputs = {{"l_suppkey", "l_suppkey"},
                      {"l_extendedprice", "l_extendedprice"},
                      {"l_discount", "l_discount"},
                      {"l_shipyear", "l_shipyear"}};
  PlanBuilder items = PlanBuilder::Scan(
      d.lineitem,
      {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount",
       "l_shipdate", "l_shipyear"},
      "q7/lineitem_scan");
  items.Filter(RangeI64("l_shipdate", Date(1995, 1, 1), Date(1997, 1, 1)),
               "q7/lineitem");
  orders.MergeJoin(std::move(items), mj, "q7/mergejoin");

  // Attach supplier nation.
  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_nationkey", "supp_nation_code"}};
  sj.probe_outputs = {"cust_nation_code", "l_extendedprice", "l_discount",
                      "l_shipyear"};
  sj.use_bloom = true;
  PlanBuilder supp = PlanBuilder::Scan(
      d.supplier, {"s_suppkey", "s_nationkey"}, "q7/supplier_scan");
  supp.Filter(InI64("s_nationkey", {fr, de}), "q7/supplier");
  orders.HashJoin(std::move(supp), sj, "q7/supplier_join");

  // (supp=FR and cust=DE) or (supp=DE and cust=FR).
  std::vector<ExprPtr> c1;
  c1.push_back(Eq(Col("supp_nation_code"), Lit(fr)));
  c1.push_back(Eq(Col("cust_nation_code"), Lit(de)));
  std::vector<ExprPtr> c2;
  c2.push_back(Eq(Col("supp_nation_code"), Lit(de)));
  c2.push_back(Eq(Col("cust_nation_code"), Lit(fr)));
  std::vector<ExprPtr> either;
  either.push_back(AndAll(std::move(c1)));
  either.push_back(AndAll(std::move(c2)));

  std::vector<Out> outs;
  outs.push_back({"supp_nation_code", Col("supp_nation_code")});
  outs.push_back({"cust_nation_code", Col("cust_nation_code")});
  outs.push_back({"l_shipyear", Col("l_shipyear")});
  outs.push_back({"volume", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("volume"), "revenue"));

  return orders.Filter(OrAny(std::move(either)), "q7/nation_pair")
      .Project(std::move(outs), "q7/project")
      .GroupBy({GK{"supp_nation_code", 5}, GK{"cust_nation_code", 5},
                GK{"l_shipyear", 11}},
               {"supp_nation_code", "cust_nation_code", "l_shipyear"},
               std::move(aggs), "q7/agg")
      .Sort({{"supp_nation_code", false},
             {"cust_nation_code", false},
             {"l_shipyear", false}})
      .Build();
}

plan::LogicalPlan Q10Plan(const TpchData& d) {
  // Per-customer revenue over returned items of Q4-1993 orders: the
  // aggregation feeds the customer/nation joins above it, so the staged
  // compiler materializes it and re-scans the intermediate.
  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_custkey", "o_custkey"}};
  oj.probe_outputs = {"l_extendedprice", "l_discount"};
  oj.use_bloom = true;
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_custkey", "o_orderdate"},
      "q10/orders_scan");
  orders.Filter(
      RangeI64("o_orderdate", Date(1993, 10, 1), Date(1994, 1, 1)),
      "q10/orders");

  std::vector<Out> outs;
  outs.push_back({"o_custkey", Col("o_custkey")});
  outs.push_back({"revenue", Revenue()});

  std::vector<Agg> aggs;
  aggs.push_back(MakeAgg("sum", Col("revenue"), "revenue"));

  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_name", "c_name"},
                      {"c_acctbal", "c_acctbal"},
                      {"c_nationkey", "c_nationkey"},
                      {"c_phone", "c_phone"},
                      {"c_address", "c_address"},
                      {"c_comment", "c_comment"}};
  cj.probe_outputs = {"o_custkey", "revenue"};

  HashJoinSpec nj;
  nj.build_key = "n_nationkey";
  nj.probe_key = "c_nationkey";
  nj.build_outputs = {{"n_name", "n_name"}};
  nj.probe_outputs = {"o_custkey", "c_name", "revenue", "c_acctbal",
                      "c_phone", "c_address", "c_comment"};

  return PlanBuilder::Scan(d.lineitem,
                           {"l_orderkey", "l_extendedprice", "l_discount",
                            "l_returnflag_code"},
                           "q10/lineitem_scan")
      .Filter(InI64("l_returnflag_code", {0, 1}),  // 'R' or 'A'
              "q10/returned")
      .HashJoin(std::move(orders), oj, "q10/join")
      .Project(std::move(outs), "q10/project")
      .GroupBy({GK{"o_custkey", 32}}, {"o_custkey"}, std::move(aggs),
               "q10/agg")
      .HashJoin(PlanBuilder::Scan(d.customer,
                                  {"c_custkey", "c_name", "c_acctbal",
                                   "c_nationkey", "c_phone", "c_address",
                                   "c_comment"},
                                  "q10/customer_scan"),
                cj, "q10/customer_join")
      .HashJoin(PlanBuilder::Scan(d.nation, {"n_nationkey", "n_name"},
                                  "q10/nation_scan"),
                nj, "q10/nation_join")
      .Sort({{"revenue", true}}, 20)
      .Build();
}

namespace {

/// Q12's filtered lineitems (MAIL/SHIP, the date sandwich), right side
/// of the merge join with orders on the clustered orderkey.
PlanBuilder Q12Items(const TpchData& d, const std::string& label) {
  std::vector<ExprPtr> preds;
  preds.push_back(InI64("l_shipmode_code",
                        {CodeOf(ShipModes(), "MAIL"),
                         CodeOf(ShipModes(), "SHIP")}));
  preds.push_back(Lt(Col("l_commitdate"), Col("l_receiptdate")));
  preds.push_back(Lt(Col("l_shipdate"), Col("l_commitdate")));
  preds.push_back(Ge(Col("l_receiptdate"), Lit(Date(1994, 1, 1))));
  preds.push_back(Lt(Col("l_receiptdate"), Lit(Date(1995, 1, 1))));
  PlanBuilder items = PlanBuilder::Scan(
      d.lineitem,
      {"l_orderkey", "l_shipmode", "l_shipmode_code", "l_shipdate",
       "l_commitdate", "l_receiptdate"},
      label + "_scan");
  items.Filter(AndAll(std::move(preds)), label);
  return items;
}

}  // namespace

plan::LogicalPlan Q12Plan(const TpchData& d) {
  // high = lines of URGENT/HIGH orders per shipmode: merge join with
  // orders on the (ascending, order-proven) orderkey, filter on the
  // fetched priority, count. Becomes the build side.
  MergeJoinSpec mj;
  mj.left_key = "o_orderkey";
  mj.right_key = "l_orderkey";
  mj.left_outputs = {{"o_orderpriority_code", "o_orderpriority_code"}};
  mj.right_outputs = {{"l_shipmode_code", "l_shipmode_code"}};
  std::vector<Agg> ha;
  ha.push_back(MakeAgg("count", nullptr, "high_line_count"));
  PlanBuilder high = PlanBuilder::Scan(
      d.orders, {"o_orderkey", "o_orderpriority_code"}, "q12/orders_scan");
  high.MergeJoin(Q12Items(d, "q12/select_high"), mj, "q12/mergejoin")
      .Filter(Le(Col("o_orderpriority_code"), Lit(1)), "q12/high")
      .GroupBy({GK{"l_shipmode_code", 3}}, {"l_shipmode_code"},
               std::move(ha), "q12/high_agg");

  // all = every filtered line per shipmode (the FK merge join keeps
  // each line exactly once, so counting the filter output directly is
  // equivalent); probes the high-count build.
  std::vector<Agg> ta;
  ta.push_back(MakeAgg("count", nullptr, "all_count"));

  HashJoinSpec fj;
  fj.build_key = "l_shipmode_code";
  fj.probe_key = "l_shipmode_code";
  fj.build_outputs = {{"high_line_count", "high_line_count"}};
  fj.probe_outputs = {"l_shipmode", "all_count"};

  std::vector<Out> outs;
  outs.push_back({"l_shipmode", Col("l_shipmode")});
  outs.push_back({"high_line_count", Col("high_line_count")});
  outs.push_back({"low_line_count",
                  Sub(Col("all_count"), Col("high_line_count"))});

  return Q12Items(d, "q12/select")
      .GroupBy({GK{"l_shipmode_code", 3}},
               {"l_shipmode", "l_shipmode_code"}, std::move(ta),
               "q12/all_agg")
      .HashJoin(std::move(high), fj, "q12/final_join")
      .Project(std::move(outs), "q12/final")
      .Sort({{"l_shipmode", false}})
      .Build();
}

plan::LogicalPlan Q2Plan(const TpchData& d) {
  // The joined (partsupp x filtered part x European supplier) table.
  // Plans are trees, so the pipeline is built once per use: once under
  // the per-part min aggregation and once as the probe of the
  // min-filter join (same duplication as Q14's base; a shared-subplan
  // node would remove it — ROADMAP).
  auto joined = [&d](const std::string& label) {
    HashJoinSpec sj;
    sj.build_key = "n_nationkey";
    sj.probe_key = "s_nationkey";
    sj.build_outputs = {{"n_name", "n_name"}};
    sj.probe_outputs = {"s_suppkey", "s_name", "s_address", "s_phone",
                        "s_acctbal", "s_comment"};
    PlanBuilder supp = PlanBuilder::Scan(
        d.supplier,
        {"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal",
         "s_comment", "s_nationkey"},
        label + "/supplier_scan");
    supp.HashJoin(NationsOfRegion(d, "EUROPE", label), sj,
                  label + "/supplier_nation");

    std::vector<ExprPtr> pp;
    pp.push_back(Eq(Col("p_size"), Lit(15)));
    pp.push_back(StrSuffix("p_type", "BRASS"));
    PlanBuilder part = PlanBuilder::Scan(
        d.part, {"p_partkey", "p_mfgr", "p_size", "p_type"},
        label + "/part_scan");
    part.Filter(AndAll(std::move(pp)), label + "/part");

    HashJoinSpec pj;
    pj.build_key = "p_partkey";
    pj.probe_key = "ps_partkey";
    pj.build_outputs = {{"p_mfgr", "p_mfgr"}};
    pj.probe_outputs = {"ps_partkey", "ps_suppkey", "ps_supplycost"};
    pj.use_bloom = true;  // most partsupp rows miss the filtered parts
    PlanBuilder ps = PlanBuilder::Scan(
        d.partsupp, {"ps_partkey", "ps_suppkey", "ps_supplycost"},
        label + "/partsupp_scan");
    ps.HashJoin(std::move(part), pj, label + "/partsupp_part");

    HashJoinSpec ssj;
    ssj.build_key = "s_suppkey";
    ssj.probe_key = "ps_suppkey";
    ssj.build_outputs = {{"s_name", "s_name"},       {"n_name", "n_name"},
                         {"s_address", "s_address"}, {"s_phone", "s_phone"},
                         {"s_acctbal", "s_acctbal"},
                         {"s_comment", "s_comment"}};
    ssj.probe_outputs = {"ps_partkey", "ps_supplycost", "p_mfgr"};
    ps.HashJoin(std::move(supp), ssj, label + "/supplier_partsupp");
    return ps;
  };

  std::vector<Agg> ma;
  ma.push_back(MakeAgg("min", Col("ps_supplycost"), "min_cost"));
  PlanBuilder mins = joined("q2/min");
  mins.GroupBy({GK{"ps_partkey", 40}}, {"ps_partkey"}, std::move(ma),
               "q2/min_agg");

  HashJoinSpec mj;
  mj.build_key = "ps_partkey";
  mj.probe_key = "ps_partkey";
  mj.build_outputs = {{"min_cost", "min_cost"}};
  mj.probe_outputs = {"ps_partkey", "ps_supplycost", "p_mfgr", "s_name",
                      "n_name",     "s_address",     "s_phone",
                      "s_acctbal",  "s_comment"};

  return joined("q2")
      .HashJoin(std::move(mins), mj, "q2/min_join")
      .Filter(Eq(Col("ps_supplycost"), Col("min_cost")), "q2/min_filter")
      .Sort({{"s_acctbal", true},
             {"n_name", false},
             {"s_name", false},
             {"ps_partkey", false}},
            100)
      .Build();
}

plan::LogicalPlan Q11Plan(const TpchData& d) {
  // German partsupp rows with value = cost * availqty, used by both the
  // per-part aggregation and the threshold subquery.
  auto base = [&d](const std::string& label) {
    PlanBuilder supp = PlanBuilder::Scan(
        d.supplier, {"s_suppkey", "s_nationkey"},
        label + "/supplier_scan");
    supp.Filter(Eq(Col("s_nationkey"), Lit(NationCode("GERMANY"))),
                label + "/s_nation");
    HashJoinSpec sj;
    sj.build_key = "s_suppkey";
    sj.probe_key = "ps_suppkey";
    sj.kind = HashJoinSpec::Kind::kSemi;
    PlanBuilder ps = PlanBuilder::Scan(
        d.partsupp,
        {"ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty_f"},
        label + "/partsupp_scan");
    ps.HashJoin(std::move(supp), sj, label + "/partsupp_semi");
    std::vector<Out> outs;
    outs.push_back({"ps_partkey", Col("ps_partkey")});
    outs.push_back(
        {"value", Mul(Col("ps_supplycost"), Col("ps_availqty_f"))});
    ps.Project(std::move(outs), label + "/project");
    return ps;
  };

  // threshold = sum(value) * 0.0001 — a scalar subquery folded into the
  // HAVING predicate below.
  std::vector<Agg> ta;
  ta.push_back(MakeAgg("sum", Col("value"), "total"));
  PlanBuilder sub = base("q11/total");
  sub.GroupBy({}, {}, std::move(ta), "q11/total_agg");
  std::vector<Out> th;
  th.push_back({"threshold", Mul(Col("total"), Lit(0.0001))});
  sub.Project(std::move(th), "q11/threshold");

  std::vector<Agg> pa;
  pa.push_back(MakeAgg("sum", Col("value"), "value"));
  return base("q11")
      .GroupBy({GK{"ps_partkey", 40}}, {"ps_partkey"}, std::move(pa),
               "q11/agg")
      .BindScalar("q11_threshold", std::move(sub), "threshold")
      .Filter(Gt(Col("value"), ScalarRef("q11_threshold")), "q11/having")
      .Sort({{"value", true}})
      .Build();
}

plan::LogicalPlan Q13Plan(const TpchData& d) {
  // Orders without "special requests" counted per customer; the LEFT
  // OUTER join patches customers with no such orders back in with a
  // default c_count of 0, replacing the hand-assembled zero bucket.
  PlanBuilder orders = PlanBuilder::Scan(
      d.orders, {"o_custkey", "o_comment"}, "q13/orders_scan");
  std::vector<Agg> ca;
  ca.push_back(MakeAgg("count", nullptr, "c_count"));
  orders
      .Filter(StrNotContains("o_comment", "special requests"),
              "q13/orders")
      .GroupBy({GK{"o_custkey", 32}}, {"o_custkey"}, std::move(ca),
               "q13/per_cust");

  HashJoinSpec lj;
  lj.build_key = "o_custkey";
  lj.probe_key = "c_custkey";
  lj.kind = HashJoinSpec::Kind::kLeftOuter;
  lj.build_outputs = {{"c_count", "c_count"}};
  // No probe outputs: only the (possibly patched) count feeds the
  // histogram.

  std::vector<Agg> ha;
  ha.push_back(MakeAgg("count", nullptr, "custdist"));
  return PlanBuilder::Scan(d.customer, {"c_custkey"}, "q13/customer_scan")
      .HashJoin(std::move(orders), lj, "q13/cust_orders")
      .GroupBy({GK{"c_count", 16}}, {"c_count"}, std::move(ha), "q13/hist")
      .Sort({{"custdist", true}, {"c_count", true}})
      .Build();
}

plan::LogicalPlan Q15Plan(const TpchData& d) {
  // Revenue per supplier over Q1-1996 shipments.
  auto rev = [&d](const std::string& label) {
    PlanBuilder b = PlanBuilder::Scan(
        d.lineitem,
        {"l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"},
        label + "/lineitem_scan");
    std::vector<Out> outs;
    outs.push_back({"l_suppkey", Col("l_suppkey")});
    outs.push_back({"revenue", Revenue()});
    std::vector<Agg> aggs;
    aggs.push_back(MakeAgg("sum", Col("revenue"), "total_revenue"));
    b.Filter(RangeI64("l_shipdate", Date(1996, 1, 1), Date(1996, 4, 1)),
             label + "/select")
        .Project(std::move(outs), label + "/project")
        .GroupBy({GK{"l_suppkey", 24}}, {"l_suppkey"}, std::move(aggs),
                 label + "/agg");
    return b;
  };

  // The top revenue — a scalar subquery folded into the filter (ties
  // all survive, as in the reference SQL's = (select max(...))).
  std::vector<Agg> ma;
  ma.push_back(MakeAgg("max", Col("total_revenue"), "max_revenue"));
  PlanBuilder sub = rev("q15/max");
  sub.GroupBy({}, {}, std::move(ma), "q15/max_agg");

  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_name", "s_name"},
                      {"s_address", "s_address"},
                      {"s_phone", "s_phone"}};
  sj.probe_outputs = {"l_suppkey", "total_revenue"};

  return rev("q15")
      .BindScalar("q15_max", std::move(sub), "max_revenue")
      .Filter(Ge(Col("total_revenue"), ScalarRef("q15_max")), "q15/top")
      .HashJoin(PlanBuilder::Scan(d.supplier,
                                  {"s_suppkey", "s_name", "s_address",
                                   "s_phone"},
                                  "q15/supplier_scan"),
                sj, "q15/supplier_join")
      .Sort({{"l_suppkey", false}})
      .Build();
}

plan::LogicalPlan Q17Plan(const TpchData& d) {
  // Lineitems of the selected brand/container parts.
  auto base = [&d](const std::string& label) {
    std::vector<ExprPtr> pp;
    pp.push_back(Eq(Col("p_brand_code"), Lit((2 - 1) * 5 + (3 - 1))));
    pp.push_back(Eq(Col("p_container_code"),
                    Lit(CodeOf(ContainerSyllable1(), "MED") * 8 +
                        CodeOf(ContainerSyllable2(), "BOX"))));
    PlanBuilder part = PlanBuilder::Scan(
        d.part, {"p_partkey", "p_brand_code", "p_container_code"},
        label + "/part_scan");
    part.Filter(AndAll(std::move(pp)), label + "/part");
    HashJoinSpec pj;
    pj.build_key = "p_partkey";
    pj.probe_key = "l_partkey";
    pj.probe_outputs = {"l_partkey", "l_quantity_f", "l_extendedprice"};
    pj.use_bloom = true;
    PlanBuilder li = PlanBuilder::Scan(
        d.lineitem, {"l_partkey", "l_quantity_f", "l_extendedprice"},
        label + "/lineitem_scan");
    li.HashJoin(std::move(part), pj, label + "/join");
    return li;
  };

  // Per-part average quantity, joined back against the same pipeline
  // (the agg-feeding-join shape; the threshold computes above it).
  std::vector<Agg> aa;
  aa.push_back(MakeAgg("avg", Col("l_quantity_f"), "avg_qty"));
  PlanBuilder avgs = base("q17/avg");
  avgs.GroupBy({GK{"l_partkey", 40}}, {"l_partkey"}, std::move(aa),
               "q17/avg_agg");

  HashJoinSpec bj;
  bj.build_key = "l_partkey";
  bj.probe_key = "l_partkey";
  bj.build_outputs = {{"avg_qty", "avg_qty"}};
  bj.probe_outputs = {"l_quantity_f", "l_extendedprice"};

  std::vector<Out> touts;
  touts.push_back({"l_quantity_f", Col("l_quantity_f")});
  touts.push_back({"l_extendedprice", Col("l_extendedprice")});
  touts.push_back({"threshold", Mul(Col("avg_qty"), Lit(0.2))});

  std::vector<Agg> sa;
  sa.push_back(MakeAgg("sum", Col("l_extendedprice"), "total"));

  std::vector<Out> fouts;
  fouts.push_back({"avg_yearly", Div(Col("total"), Lit(7.0))});

  return base("q17")
      .HashJoin(std::move(avgs), bj, "q17/back_join")
      .Project(std::move(touts), "q17/threshold")
      .Filter(Lt(Col("l_quantity_f"), Col("threshold")),
              "q17/small_orders")
      .GroupBy({}, {}, std::move(sa), "q17/sum")
      .Project(std::move(fouts), "q17/final")
      .Build();
}

plan::LogicalPlan Q22Plan(const TpchData& d) {
  const std::vector<i64> codes = {13, 31, 23, 29, 30, 18, 17};
  // Customers of the selected country codes; the country-code *string*
  // is computed from the phone prefix with a substring projection (the
  // reference SQL's substring(c_phone from 1 for 2)).
  auto cust = [&d, &codes](const std::string& label) {
    PlanBuilder b = PlanBuilder::Scan(
        d.customer,
        {"c_custkey", "c_acctbal", "c_phone", "c_cntrycode_code"},
        label + "/customer_scan");
    b.Filter(InI64("c_cntrycode_code", codes), label + "/cust");
    std::vector<Out> outs;
    outs.push_back({"c_custkey", Col("c_custkey")});
    outs.push_back({"c_acctbal", Col("c_acctbal")});
    outs.push_back({"c_cntrycode_code", Col("c_cntrycode_code")});
    outs.push_back({"c_cntrycode", Substr(Col("c_phone"), 0, 2)});
    b.Project(std::move(outs), label + "/project");
    return b;
  };

  // Average positive balance — the scalar threshold for "rich".
  std::vector<Agg> aa;
  aa.push_back(MakeAgg("avg", Col("c_acctbal"), "avg_bal"));
  PlanBuilder sub = cust("q22/avg");
  sub.Filter(Gt(Col("c_acctbal"), Lit(0.0)), "q22/positive")
      .GroupBy({}, {}, std::move(aa), "q22/avg_agg");

  HashJoinSpec aj;
  aj.build_key = "o_custkey";
  aj.probe_key = "c_custkey";
  aj.kind = HashJoinSpec::Kind::kAnti;

  std::vector<Agg> fa;
  fa.push_back(MakeAgg("count", nullptr, "numcust"));
  fa.push_back(MakeAgg("sum", Col("c_acctbal"), "totacctbal"));

  return cust("q22")
      .BindScalar("q22_avg", std::move(sub), "avg_bal")
      .Filter(Gt(Col("c_acctbal"), ScalarRef("q22_avg")), "q22/rich")
      .HashJoin(PlanBuilder::Scan(d.orders, {"o_custkey"},
                                  "q22/orders_scan"),
                aj, "q22/no_orders")
      .GroupBy({GK{"c_cntrycode_code", 6}}, {"c_cntrycode"},
               std::move(fa), "q22/agg")
      .Sort({{"c_cntrycode", false}})
      .Build();
}

plan::LogicalPlan Q14Plan(const TpchData& d) {
  // promo and total revenue are both single-group aggregates; grouping
  // them on a constant key ("one") makes the pair joinable, and the
  // share computes in the projection above the join — no scalar
  // post-processing outside the plan.
  //
  // Plans are trees, so the shipdate-filter + part-join pipeline below
  // both aggregates is built (and executed) once per side. The old
  // hand-built query shared one temp table instead; recovering that
  // sharing needs common-subplan nodes in the plan layer (ROADMAP).
  auto base = [&d](const std::string& label) {
    HashJoinSpec pj;
    pj.build_key = "p_partkey";
    pj.probe_key = "l_partkey";
    pj.build_outputs = {{"p_type_code", "p_type_code"}};
    pj.probe_outputs = {"l_extendedprice", "l_discount"};
    std::vector<Out> outs;
    outs.push_back({"p_type_code", Col("p_type_code")});
    outs.push_back({"revenue", Revenue()});
    outs.push_back({"one", Add(Mul(Col("p_type_code"), Lit(0)), Lit(1))});
    PlanBuilder b = PlanBuilder::Scan(
        d.lineitem,
        {"l_partkey", "l_extendedprice", "l_discount", "l_shipdate"},
        label + "/lineitem_scan");
    b.Filter(RangeI64("l_shipdate", Date(1995, 9, 1), Date(1995, 10, 1)),
             label + "/select")
        .HashJoin(PlanBuilder::Scan(d.part, {"p_partkey", "p_type_code"},
                                    label + "/part_scan"),
                  pj, label + "/part_join")
        .Project(std::move(outs), label + "/project");
    return b;
  };

  // PROMO types occupy type codes [promo_lo, promo_lo + 25).
  const i64 promo_lo = CodeOf(TypeSyllable1(), "PROMO") * 25;
  std::vector<Agg> pa;
  pa.push_back(MakeAgg("sum", Col("revenue"), "promo"));
  PlanBuilder promo = base("q14/promo");
  promo
      .Filter(RangeI64("p_type_code", promo_lo, promo_lo + 25),
              "q14/promo_filter")
      .GroupBy({GK{"one", 1}}, {"one"}, std::move(pa), "q14/promo_agg");

  std::vector<Agg> ta;
  ta.push_back(MakeAgg("sum", Col("revenue"), "total"));

  HashJoinSpec fj;
  fj.build_key = "one";
  fj.probe_key = "one";
  fj.build_outputs = {{"promo", "promo"}};
  fj.probe_outputs = {"total"};

  std::vector<Out> outs;
  outs.push_back({"promo_revenue",
                  Div(Mul(Col("promo"), Lit(100.0)), Col("total"))});

  return base("q14")
      .GroupBy({GK{"one", 1}}, {"one"}, std::move(ta), "q14/total_agg")
      .HashJoin(std::move(promo), fj, "q14/share_join")
      .Project(std::move(outs), "q14/share")
      .Build();
}

bool HasPlan(int q) {
  switch (q) {
    case 1: case 2: case 3: case 4: case 5: case 6: case 7:
    case 10: case 11: case 12: case 13: case 14: case 15:
    case 17: case 22:
      return true;
    default:
      return false;
  }
}

plan::LogicalPlan PlanForQuery(const TpchData& d, int q) {
  switch (q) {
    case 1: return Q1Plan(d);
    case 2: return Q2Plan(d);
    case 3: return Q3Plan(d);
    case 4: return Q4Plan(d);
    case 5: return Q5Plan(d);
    case 6: return Q6Plan(d);
    case 7: return Q7Plan(d);
    case 10: return Q10Plan(d);
    case 11: return Q11Plan(d);
    case 12: return Q12Plan(d);
    case 13: return Q13Plan(d);
    case 14: return Q14Plan(d);
    case 15: return Q15Plan(d);
    case 17: return Q17Plan(d);
    case 22: return Q22Plan(d);
    default:
      MA_CHECK(false);  // caller gates on HasPlan(q)
      return plan::LogicalPlan{};
  }
}

}  // namespace ma::tpch
