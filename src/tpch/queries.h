// The 22 TPC-H queries as hand-built physical plans over the engine's
// operators. Queries with scalar or correlated subqueries run multiple
// stages internally (materializing intermediate tables), like a
// query optimizer would decorrelate them. Each stage's primitives are
// adaptive instances, so a full power run exercises Micro Adaptivity on
// 300+ primitive instances (as in the paper's evaluation).
#ifndef MA_TPCH_QUERIES_H_
#define MA_TPCH_QUERIES_H_

#include "exec/engine.h"
#include "tpch/dbgen.h"

namespace ma::tpch {

inline constexpr int kNumQueries = 22;

/// Short description of query `q` (1-based).
const char* QueryName(int q);

/// Executes TPC-H query `q` (1..22) against `data` using `engine`.
/// The engine accumulates primitive-instance profiles across stages.
RunResult RunQuery(Engine* engine, const TpchData& data, int q);

}  // namespace ma::tpch

#endif  // MA_TPCH_QUERIES_H_
