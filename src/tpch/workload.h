// TPC-H workload driver: runs the 22 queries under a given engine
// configuration and captures per-query timings plus per-primitive-
// instance profiles (cycles, tuples, APH, affected flavor sets). The
// flavor-set impact tables (Tables 6-10) and the overall comparison
// (Table 11) are computed from several ModeRuns: because data and plans
// are deterministic, instance i of query q performs the same call
// sequence in every mode, so APHs align bucket-by-bucket and the paper's
// approximated OPT is the per-bucket minimum across modes.
#ifndef MA_TPCH_WORKLOAD_H_
#define MA_TPCH_WORKLOAD_H_

#include <string>
#include <vector>

#include "serve/workload_server.h"
#include "tpch/queries.h"

namespace ma::tpch {

/// Profile of one primitive instance after a query ran.
struct InstanceProfile {
  std::string label;
  std::string signature;
  u32 affected_sets = 0;  // bitmask of FlavorSetBit()
  u64 calls = 0;
  u64 tuples = 0;
  u64 cycles = 0;
  Aph aph{512};
};

/// One full power run (22 queries) under one engine configuration.
struct ModeRun {
  std::string name;
  std::vector<f64> query_seconds;  // [q-1]
  std::vector<std::vector<InstanceProfile>> instances;  // [q-1][i]

  u64 TotalPrimitiveCycles() const;
  /// Cycles spent in instances affected by `set`.
  u64 AffectedCycles(FlavorSetId set) const;
  /// Geometric mean of per-query seconds.
  f64 GeoMeanSeconds() const;
};

/// Runs all 22 queries; fresh engine state per query (instances and
/// bandit state are per-query, as in Vectorwise). Plan-ported queries
/// (plans.h HasPlan) run through plan::QuerySession — the same entry
/// point the serving layer uses — and the remaining hand-built trees
/// take the legacy Engine path.
ModeRun RunAllQueries(const EngineConfig& config, const TpchData& data,
                      std::string name, bool quiet = true);

/// Concurrent serving driver: `submitters` threads each submit every
/// plan-ported query `rounds` times through one WorkloadServer, wait
/// for their results, and check every completed table byte-for-byte
/// against a serial single-tenant baseline. Used by the serve stress
/// step in CI and by bench_scaling's concurrency section.
struct ServeWorkloadConfig {
  int submitters = 4;
  int rounds = 2;
  serve::ServerConfig server;
  /// > 0 arms probabilistic kInternal fault injection (serial batch and
  /// parallel morsel sites) on every submitted query — the retry loop
  /// must heal what fires, up to its attempt cap.
  f64 fault_probability = 0;
  u64 fault_seed = 7;
};
struct ServeWorkloadReport {
  serve::ServerStats stats;
  u64 ok = 0;        // completed with a table
  u64 failed = 0;    // executed, terminally failed (retries exhausted)
  u64 rejected = 0;  // shed kRejected, never executed
  /// Completed results whose bytes differ from the serial baseline.
  /// Any nonzero value is a determinism bug.
  u64 mismatches = 0;
  /// Shed queries that returned rows anyway. Must stay 0 — rejection
  /// means "never executed".
  u64 rejected_with_table = 0;
  /// MemoryBroker::leased_bytes() after the run. Must be 0.
  u64 leaked_lease_bytes = 0;
  bool clean() const {
    return mismatches == 0 && rejected_with_table == 0 &&
           leaked_lease_bytes == 0;
  }
};
ServeWorkloadReport RunWorkloadConcurrently(const TpchData& data,
                                            const ServeWorkloadConfig& cfg,
                                            bool quiet = true);

/// Convenience EngineConfigs for the evaluation modes.
EngineConfig DefaultConfig();
EngineConfig ForcedConfig(const std::string& flavor);
EngineConfig HeuristicConfig();
/// Adaptive with only `sets` (bitmask) eligible; kAllFlavorSets for all.
EngineConfig AdaptiveConfig(u32 sets = kAllFlavorSets);

/// Approximated OPT cycles for the instances affected by `set`: per APH
/// bucket, the minimum cycles across the given runs (paper §4.1).
u64 OptAffectedCycles(const std::vector<const ModeRun*>& runs,
                      FlavorSetId set);

}  // namespace ma::tpch

#endif  // MA_TPCH_WORKLOAD_H_
