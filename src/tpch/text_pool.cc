#include "tpch/text_pool.h"

namespace ma::tpch {

const std::vector<std::string>& RegionNames() {
  static const auto* v = new std::vector<std::string>{
      "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
  return *v;
}

const std::vector<std::string>& NationNames() {
  static const auto* v = new std::vector<std::string>{
      "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
      "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
      "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
      "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
      "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
      "UNITED STATES"};
  return *v;
}

int NationRegion(int nation) {
  // Region keys per the TPC-H spec's nation table.
  static const int kRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                  4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
  return kRegion[nation];
}

const std::vector<std::string>& Segments() {
  static const auto* v = new std::vector<std::string>{
      "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};
  return *v;
}

const std::vector<std::string>& Priorities() {
  static const auto* v = new std::vector<std::string>{
      "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
  return *v;
}

const std::vector<std::string>& ShipModes() {
  static const auto* v = new std::vector<std::string>{
      "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
  return *v;
}

const std::vector<std::string>& ShipInstructs() {
  static const auto* v = new std::vector<std::string>{
      "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};
  return *v;
}

const std::vector<std::string>& Colors() {
  static const auto* v = new std::vector<std::string>{
      "almond",     "antique",    "aquamarine", "azure",     "beige",
      "bisque",     "black",      "blanched",   "blue",      "blush",
      "brown",      "burlywood",  "burnished",  "chartreuse", "chiffon",
      "chocolate",  "coral",      "cornflower", "cornsilk",  "cream",
      "cyan",       "dark",       "deep",       "dim",       "dodger",
      "drab",       "firebrick",  "floral",     "forest",    "frosted",
      "gainsboro",  "ghost",      "goldenrod",  "green",     "grey",
      "honeydew",   "hot",        "indian",     "ivory",     "khaki",
      "lace",       "lavender",   "lawn",       "lemon",     "light",
      "lime",       "linen",      "magenta",    "maroon",    "medium",
      "metallic",   "midnight",   "mint",       "misty",     "moccasin",
      "navajo",     "navy",       "olive",      "orange",    "orchid",
      "pale",       "papaya",     "peach",      "peru",      "pink",
      "plum",       "powder",     "puff",       "purple",    "red",
      "rose",       "rosy",       "royal",      "saddle",    "salmon",
      "sandy",      "seashell",   "sienna",     "sky",       "slate",
      "smoke",      "snow",       "spring",     "steel",     "tan",
      "thistle",    "tomato",     "turquoise",  "violet",    "wheat",
      "white",      "yellow"};
  return *v;
}

const std::vector<std::string>& TypeSyllable1() {
  static const auto* v = new std::vector<std::string>{
      "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"};
  return *v;
}

const std::vector<std::string>& TypeSyllable2() {
  static const auto* v = new std::vector<std::string>{
      "ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"};
  return *v;
}

const std::vector<std::string>& TypeSyllable3() {
  static const auto* v = new std::vector<std::string>{
      "TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
  return *v;
}

const std::vector<std::string>& ContainerSyllable1() {
  static const auto* v = new std::vector<std::string>{
      "SM", "LG", "MED", "JUMBO", "WRAP"};
  return *v;
}

const std::vector<std::string>& ContainerSyllable2() {
  static const auto* v = new std::vector<std::string>{
      "CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"};
  return *v;
}

int CodeOf(const std::vector<std::string>& list,
           const std::string& value) {
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i] == value) return static_cast<int>(i);
  }
  return -1;
}

namespace {

const std::vector<std::string>& CommentWords() {
  static const auto* v = new std::vector<std::string>{
      "furiously", "quickly",  "carefully", "blithely", "slyly",
      "ironic",    "final",    "pending",   "regular",  "express",
      "bold",      "even",     "silent",    "unusual",  "daring",
      "accounts",  "packages", "deposits",  "theodolites", "pinto",
      "beans",     "instructions", "foxes", "dependencies", "requests",
      "platelets", "asymptotes", "courts",  "ideas",    "dolphins",
      "sleep",     "wake",     "nag",       "haggle",   "cajole",
      "integrate", "use",      "boost",     "detect",   "engage"};
  return *v;
}

}  // namespace

std::string MakeComment(Rng* rng, int min_words, int max_words,
                        const std::string& phrase, f64 phrase_prob) {
  const auto& words = CommentWords();
  const int n =
      min_words + static_cast<int>(rng->NextBounded(
                      static_cast<u64>(max_words - min_words + 1)));
  std::string out;
  const bool inject = !phrase.empty() && rng->NextBool(phrase_prob);
  const int inject_at =
      inject ? static_cast<int>(rng->NextBounded(n)) : -1;
  for (int i = 0; i < n; ++i) {
    if (!out.empty()) out += ' ';
    if (i == inject_at) {
      out += phrase;
    } else {
      out += words[rng->NextBounded(words.size())];
    }
  }
  return out;
}

std::string MakeBrand(Rng* rng, int* code_out) {
  const int m = 1 + static_cast<int>(rng->NextBounded(5));
  const int n = 1 + static_cast<int>(rng->NextBounded(5));
  if (code_out != nullptr) *code_out = (m - 1) * 5 + (n - 1);
  return "Brand#" + std::to_string(m) + std::to_string(n);
}

std::string MakePartName(Rng* rng) {
  const auto& colors = Colors();
  std::string out;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) out += ' ';
    out += colors[rng->NextBounded(colors.size())];
  }
  return out;
}

std::string MakePhone(Rng* rng, int country_code) {
  auto three = [&] {
    std::string s;
    for (int i = 0; i < 3; ++i) {
      s += static_cast<char>('0' + rng->NextBounded(10));
    }
    return s;
  };
  std::string s = std::to_string(country_code);
  s += '-';
  s += three();
  s += '-';
  s += three();
  s += '-';
  s += three();
  s += static_cast<char>('0' + rng->NextBounded(10));
  return s;
}

}  // namespace ma::tpch
