// TPC-H queries expressed as logical plans. Written once against
// PlanBuilder, these run unchanged on the serial Engine and on the
// morsel-driven ParallelExecutor (plan/query_session.h) — the queries
// below are the ones whose shape the parallel executor supports end to
// end today; the hand-built trees in queries.cc cover the rest and
// migrate here as the fragmenter grows.
#ifndef MA_TPCH_PLANS_H_
#define MA_TPCH_PLANS_H_

#include "plan/logical_plan.h"
#include "tpch/dbgen.h"

namespace ma::tpch {

/// Q1: pricing summary report (scan -> filter -> project -> group-by ->
/// sort). Parallel: thread-local pre-aggregation + merge.
plan::LogicalPlan Q1Plan(const TpchData& d);

/// Q6: forecasting revenue change (scan -> filter -> project -> global
/// aggregate).
plan::LogicalPlan Q6Plan(const TpchData& d);

}  // namespace ma::tpch

#endif  // MA_TPCH_PLANS_H_
