// All 22 TPC-H queries expressed as logical plans. Written once
// against PlanBuilder, these run unchanged on the serial Engine and on
// the staged morsel-driven executor (plan/query_session.h). Plans may
// aggregate below joins (Q10, Q12, Q14), re-aggregate an aggregation
// (Q16, Q21), merge-join inside a plan (Q12), fold scalar-subquery
// results into predicates (Q11, Q15, Q22), patch probe misses with a
// LEFT OUTER join (Q13), compute CASE/substring value expressions in
// projections (Q8, Q22), and share one subplan across several
// consumers — explicitly with PlanBuilder::BindShared (Q21's late
// lines) or implicitly via the compiler's automatic deduplication of
// structurally identical subtrees (Q2/Q11/Q14/Q15/Q17/Q22's
// twice-built pipelines).
#ifndef MA_TPCH_PLANS_H_
#define MA_TPCH_PLANS_H_

#include "plan/logical_plan.h"
#include "tpch/dbgen.h"

namespace ma::tpch {

/// Q1: pricing summary report (scan -> filter -> project -> group-by ->
/// sort). Parallel: thread-local pre-aggregation + merge.
plan::LogicalPlan Q1Plan(const TpchData& d);

/// Q2: minimum cost supplier. The per-part MIN aggregation feeds a join
/// back against the same (partsupp x part x European supplier) pipeline
/// and the equality filter keeps the minimum-cost rows.
plan::LogicalPlan Q2Plan(const TpchData& d);

/// Q3: shipping priority. Customer semi-join feeds the orders build,
/// the lineitem pipeline probes it, and the grouped revenue sorts into
/// a top-10 tail.
plan::LogicalPlan Q3Plan(const TpchData& d);

/// Q4: order priority checking. Late-lineitem build, semi-joined orders
/// pipeline, count per priority.
plan::LogicalPlan Q4Plan(const TpchData& d);

/// Q5: local supplier volume. A chain of builds (region -> nation ->
/// supplier, customer -> orders) probed by the lineitem pipeline, with
/// the (suppkey, nationkey) key trick enforcing cust_nation ==
/// supp_nation.
plan::LogicalPlan Q5Plan(const TpchData& d);

/// Q6: forecasting revenue change (scan -> filter -> project -> global
/// aggregate).
plan::LogicalPlan Q6Plan(const TpchData& d);

/// Q7: volume shipping. Customer-annotated orders merge-join the
/// filtered lineitems on the clustered (ascending) orderkey — Figure
/// 4(c)'s mergejoin instance; the hash probe preserves the orders scan
/// order, so the staged order-proof stage passes without an explicit
/// sort. Supplier nation attaches by hash join, the FR/DE nation-pair
/// filter keeps the two directions, and revenue aggregates per
/// (supp_nation, cust_nation, year).
plan::LogicalPlan Q7Plan(const TpchData& d);

/// Q8: national market share. A CASE projection zeroes non-BRAZIL
/// volume so one aggregation carries both the total and the BRAZIL sum
/// per year; the share divides in the projection above it.
plan::LogicalPlan Q8Plan(const TpchData& d);

/// Q9: product type profit measure. A four-join chain (part, partsupp,
/// orders, nation-annotated supplier) under a per-(nation, year) profit
/// aggregation.
plan::LogicalPlan Q9Plan(const TpchData& d);

/// Q10: returned item reporting. The per-customer revenue aggregation
/// feeds the customer and nation joins above it — the agg-feeding-join
/// shape that compiles to dependent stages scanning a materialized
/// intermediate.
plan::LogicalPlan Q10Plan(const TpchData& d);

/// Q11: important stock. The threshold (SUM(value) * 0.0001 over the
/// same German-partsupp pipeline) is a scalar subquery folded into the
/// HAVING filter — staged execution materializes it as a broadcast
/// constant stage.
plan::LogicalPlan Q11Plan(const TpchData& d);

/// Q13: customer distribution. A LEFT OUTER hash join patches customers
/// with no qualifying orders back in with a default count of 0 before
/// the histogram aggregation.
plan::LogicalPlan Q13Plan(const TpchData& d);

/// Q15: top supplier. MAX(total_revenue) over the per-supplier revenue
/// aggregate is a scalar subquery folded into the top filter.
plan::LogicalPlan Q15Plan(const TpchData& d);

/// Q16: parts/supplier relationship. Distinct-count via re-aggregation:
/// a dedupe GroupBy on (brand, type, size, suppkey) feeds a second
/// GroupBy that counts its groups.
plan::LogicalPlan Q16Plan(const TpchData& d);

/// Q17: small-quantity-order revenue. The per-part average quantity
/// aggregation joins back against the same part/lineitem pipeline; the
/// 0.2 * avg threshold computes in a projection above the join.
plan::LogicalPlan Q17Plan(const TpchData& d);

/// Q18: large volume customers. The per-order quantity sum (HAVING >
/// 300) builds the orders join; customer names attach above.
plan::LogicalPlan Q18Plan(const TpchData& d);

/// Q19: discounted revenue — the big OR-of-ANDs predicate over the
/// part-annotated lineitems, summed into one global revenue value.
plan::LogicalPlan Q19Plan(const TpchData& d);

/// Q20: potential part promotion. The 1994 shipped-quantity aggregation
/// builds the partsupp join, excess stock filters against half that
/// quantity, and two semi joins (forest parts, CANADA suppliers) narrow
/// to the final supplier list.
plan::LogicalPlan Q20Plan(const TpchData& d);

/// Q21: suppliers who kept orders waiting. The late-lineitem filter is
/// a shared subplan (PlanBuilder::BindShared) consumed by both the
/// per-order late-supplier count and the main spine; chained semi joins
/// express the EXISTS / NOT EXISTS pair over the counts.
plan::LogicalPlan Q21Plan(const TpchData& d);

/// Q22: global sales opportunity. The average positive balance is a
/// scalar subquery folded into the "rich" filter, and the country code
/// string is a substring value expression over c_phone.
plan::LogicalPlan Q22Plan(const TpchData& d);

/// Q12: shipping modes and order priority (the Figure 2 query). A
/// merge join on the clustered orderkey inside the plan: the staged
/// compiler proves the input order (or sorts), aggregates above the
/// merge, and hash-joins the high-priority counts against the totals.
plan::LogicalPlan Q12Plan(const TpchData& d);

/// Q14: promotion effect. Promo and total revenue aggregated on a
/// constant key and joined — both hash-join sides fed by aggregations.
plan::LogicalPlan Q14Plan(const TpchData& d);

/// True when query `q` (1..22) has a plan-level port above. All 22
/// queries do — the workload and the serving layer
/// (serve/workload_server.h) drive every query through
/// plan::QuerySession. Kept for call-site compatibility.
bool HasPlan(int q);

/// The ported plan for query `q`; MA_CHECKs HasPlan(q).
plan::LogicalPlan PlanForQuery(const TpchData& d, int q);

}  // namespace ma::tpch

#endif  // MA_TPCH_PLANS_H_
