// TPC-H queries expressed as logical plans. Written once against
// PlanBuilder, these run unchanged on the serial Engine and on the
// staged morsel-driven executor (plan/query_session.h). With the stage
// DAG compiler, plans may aggregate below joins (Q10, Q12, Q14), merge-
// join inside a plan (Q12) and re-aggregate aggregate outputs — the
// hand-built trees remaining in queries.cc migrate here as more shapes
// (scalar subquery results folded into predicates, outer-join patches)
// gain plan-level expressions.
#ifndef MA_TPCH_PLANS_H_
#define MA_TPCH_PLANS_H_

#include "plan/logical_plan.h"
#include "tpch/dbgen.h"

namespace ma::tpch {

/// Q1: pricing summary report (scan -> filter -> project -> group-by ->
/// sort). Parallel: thread-local pre-aggregation + merge.
plan::LogicalPlan Q1Plan(const TpchData& d);

/// Q3: shipping priority. Customer semi-join feeds the orders build,
/// the lineitem pipeline probes it, and the grouped revenue sorts into
/// a top-10 tail.
plan::LogicalPlan Q3Plan(const TpchData& d);

/// Q4: order priority checking. Late-lineitem build, semi-joined orders
/// pipeline, count per priority.
plan::LogicalPlan Q4Plan(const TpchData& d);

/// Q5: local supplier volume. A chain of builds (region -> nation ->
/// supplier, customer -> orders) probed by the lineitem pipeline, with
/// the (suppkey, nationkey) key trick enforcing cust_nation ==
/// supp_nation.
plan::LogicalPlan Q5Plan(const TpchData& d);

/// Q6: forecasting revenue change (scan -> filter -> project -> global
/// aggregate).
plan::LogicalPlan Q6Plan(const TpchData& d);

/// Q10: returned item reporting. The per-customer revenue aggregation
/// feeds the customer and nation joins above it — the agg-feeding-join
/// shape that compiles to dependent stages scanning a materialized
/// intermediate.
plan::LogicalPlan Q10Plan(const TpchData& d);

/// Q12: shipping modes and order priority (the Figure 2 query). A
/// merge join on the clustered orderkey inside the plan: the staged
/// compiler proves the input order (or sorts), aggregates above the
/// merge, and hash-joins the high-priority counts against the totals.
plan::LogicalPlan Q12Plan(const TpchData& d);

/// Q14: promotion effect. Promo and total revenue aggregated on a
/// constant key and joined — both hash-join sides fed by aggregations.
plan::LogicalPlan Q14Plan(const TpchData& d);

}  // namespace ma::tpch

#endif  // MA_TPCH_PLANS_H_
