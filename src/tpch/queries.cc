#include "tpch/queries.h"

#include <cmath>

#include "common/cycleclock.h"

#include "plan/compiler.h"
#include "tpch/plans.h"

namespace ma::tpch {
namespace {

// =====================================================================
// Every query is expressed once as a logical plan (tpch/plans.cc) and
// lowered onto this engine; the same plans run stage-parallel through
// plan::QuerySession. RunPlan is the serial lowering shared by all of
// them.
// =====================================================================
RunResult RunPlan(Engine* e, const plan::LogicalPlan& p) {
  MA_CHECK(p.ok());
  auto root = plan::Compiler::CompileSerial(p, e);
  if (root == nullptr) {
    // A failed scalar subquery: the compiler recorded the error on the
    // engine's context.
    RunResult r;
    r.status = e->context()->status();
    if (r.status.ok()) r.status = Status::Internal("plan compilation failed");
    r.reason = ReasonFromStatus(r.status);
    return r;
  }
  return e->Run(*root);
}

// =====================================================================
// Q14: promotion effect — the plan's division has no zero guard, so
// keep the historical contract for degenerate data windows.
// =====================================================================
RunResult Q14(Engine* e, const TpchData& d) {
  RunResult r = RunPlan(e, Q14Plan(d));
  // Degenerate windows lose the plan's division guard: an empty date
  // window joins to zero rows, and an all-zero revenue total divides to
  // inf/NaN. Keep the historical contract of one finite zero row
  // (callers index row 0 of the single-value result).
  const bool ok = r.table->row_count() == 1 &&
                  std::isfinite(r.table->FindColumn("promo_revenue")
                                    ->Data<f64>()[0]);
  if (!ok) {
    r.table = std::make_unique<Table>("result");
    r.table->AddColumn("promo_revenue", PhysicalType::kF64)
        ->Append<f64>(0.0);
    r.table->set_row_count(1);
    r.rows_emitted = 1;
  }
  return r;
}

}  // namespace

const char* QueryName(int q) {
  static const char* kNames[23] = {
      "",
      "Q01 pricing summary",      "Q02 minimum cost supplier",
      "Q03 shipping priority",    "Q04 order priority checking",
      "Q05 local supplier volume", "Q06 forecasting revenue",
      "Q07 volume shipping",      "Q08 national market share",
      "Q09 product type profit",  "Q10 returned items",
      "Q11 important stock",      "Q12 shipping modes",
      "Q13 customer distribution", "Q14 promotion effect",
      "Q15 top supplier",         "Q16 parts/supplier relation",
      "Q17 small-quantity orders", "Q18 large volume customers",
      "Q19 discounted revenue",   "Q20 part promotion",
      "Q21 suppliers kept waiting", "Q22 global sales opportunity"};
  MA_CHECK(q >= 1 && q <= kNumQueries);
  return kNames[q];
}

namespace {

RunResult DispatchQuery(Engine* e, const TpchData& d, int q) {
  MA_CHECK(q >= 1 && q <= kNumQueries);
  if (q == 14) return Q14(e, d);
  return RunPlan(e, PlanForQuery(d, q));
}

}  // namespace

RunResult RunQuery(Engine* e, const TpchData& d, int q) {
  // Per-query time and the primitive-cycle total must cover the whole
  // compilation + execution (including scalar subqueries and shared
  // subplans the serial compiler runs eagerly), so measure around the
  // whole query here rather than relying on the last stage's RunResult.
  const u64 prim0 = e->TotalPrimitiveCycles();
  const u64 t0 = CycleClock::Now();
  RunResult r = DispatchQuery(e, d, q);
  r.total_cycles = CycleClock::Now() - t0;
  r.seconds =
      static_cast<f64>(r.total_cycles) / CycleClock::FrequencyHz();
  r.stages.primitives = e->TotalPrimitiveCycles() - prim0;
  return r;
}

}  // namespace ma::tpch
