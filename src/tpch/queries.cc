#include "tpch/queries.h"

#include <cmath>

#include "common/cycleclock.h"

#include "exec/op_hash_agg.h"
#include "exec/op_hash_join.h"
#include "exec/op_merge_join.h"
#include "exec/op_project.h"
#include "exec/op_scan.h"
#include "exec/op_select.h"
#include "exec/op_sort.h"
#include "plan/compiler.h"
#include "tpch/plans.h"
#include "tpch/text_pool.h"

namespace ma::tpch {
namespace {

using Out = ProjectOperator::Output;
using Agg = HashAggOperator::AggSpec;
using GK = HashAggOperator::GroupKey;

OperatorPtr Scan(Engine* e, const Table* t,
                 std::vector<std::string> cols = {}) {
  return std::make_unique<ScanOperator>(e, t, std::move(cols));
}

OperatorPtr Sel(Engine* e, OperatorPtr child, ExprPtr pred,
                std::string label) {
  return std::make_unique<SelectOperator>(e, std::move(child),
                                          std::move(pred),
                                          std::move(label));
}

OperatorPtr Proj(Engine* e, OperatorPtr child, std::vector<Out> outs,
                 std::string label) {
  return std::make_unique<ProjectOperator>(e, std::move(child),
                                           std::move(outs),
                                           std::move(label));
}

OperatorPtr Join(Engine* e, OperatorPtr build, OperatorPtr probe,
                 HashJoinSpec spec, std::string label) {
  return std::make_unique<HashJoinOperator>(e, std::move(build),
                                            std::move(probe),
                                            std::move(spec),
                                            std::move(label));
}

std::unique_ptr<Table> RunToTable(Engine* e, Operator& root) {
  return e->Run(root).table;
}

/// Sugar: revenue expression l_extendedprice * (1 - l_discount), written
/// without a literal on the left: ep - ep*disc.
ExprPtr Revenue() {
  return Sub(Col("l_extendedprice"),
             Mul(Col("l_extendedprice"), Col("l_discount")));
}

/// Keys of nations/regions by name.
i64 NationCode(const std::string& name) {
  const int c = CodeOf(NationNames(), name);
  MA_CHECK(c >= 0);
  return c;
}

/// Suppliers (or customers) of one nation: filtered scan.
OperatorPtr SupplierOfNation(Engine* e, const TpchData& d,
                             const std::string& nation,
                             std::vector<std::string> cols,
                             const std::string& label) {
  return Sel(e, Scan(e, d.supplier, std::move(cols)),
             Eq(Col("s_nationkey"), Lit(NationCode(nation))),
             label + "/s_nation");
}

/// Region -> member nation keys, via tiny joins on the metadata tables.
OperatorPtr NationsOfRegion(Engine* e, const TpchData& d,
                            const std::string& region,
                            const std::string& label) {
  // region is 5 rows; nation 25. Semi join nation against the selected
  // region key.
  auto rsel = Sel(e, Scan(e, d.region, {"r_regionkey", "r_name"}),
                  StrEq("r_name", region), label + "/region");
  HashJoinSpec spec;
  spec.build_key = "r_regionkey";
  spec.probe_key = "n_regionkey";
  spec.kind = HashJoinSpec::Kind::kSemi;
  return Join(e, std::move(rsel),
              Scan(e, d.nation, {"n_nationkey", "n_name", "n_regionkey"}),
              spec, label + "/nation_of_region");
}

// =====================================================================
// Q1: Pricing summary report — expressed once as a logical plan
// (tpch/plans.cc) and lowered onto this engine; the same plan runs
// morsel-parallel through plan::QuerySession.
// =====================================================================
RunResult RunPlan(Engine* e, const plan::LogicalPlan& p);

RunResult Q1(Engine* e, const TpchData& d) { return RunPlan(e, Q1Plan(d)); }

// =====================================================================
// Q2: Minimum cost supplier — as a plan: the per-part MIN aggregation
// feeds the min-filter join back against the supplier/partsupp
// pipeline (tpch/plans.cc).
// =====================================================================
RunResult Q2(Engine* e, const TpchData& d) { return RunPlan(e, Q2Plan(d)); }

// =====================================================================
// Q3, Q4, Q5: shipping priority, order priority checking, local
// supplier volume — expressed as logical plans (tpch/plans.cc) and
// lowered onto this engine; the same plans run stage-parallel through
// plan::QuerySession.
// =====================================================================
RunResult RunPlan(Engine* e, const plan::LogicalPlan& p) {
  MA_CHECK(p.ok());
  auto root = plan::Compiler::CompileSerial(p, e);
  if (root == nullptr) {
    // A failed scalar subquery: the compiler recorded the error on the
    // engine's context.
    RunResult r;
    r.status = e->context()->status();
    if (r.status.ok()) r.status = Status::Internal("plan compilation failed");
    r.reason = ReasonFromStatus(r.status);
    return r;
  }
  return e->Run(*root);
}

RunResult Q3(Engine* e, const TpchData& d) { return RunPlan(e, Q3Plan(d)); }

RunResult Q4(Engine* e, const TpchData& d) { return RunPlan(e, Q4Plan(d)); }

RunResult Q5(Engine* e, const TpchData& d) { return RunPlan(e, Q5Plan(d)); }

// =====================================================================
// Q6: Forecasting revenue change — via the logical plan (see Q1).
// =====================================================================
RunResult Q6(Engine* e, const TpchData& d) { return RunPlan(e, Q6Plan(d)); }

// =====================================================================
// Q7: Volume shipping — via the logical plan (see Q1). Exercises the
// merge join on the clustered orderkey order.
// =====================================================================
RunResult Q7(Engine* e, const TpchData& d) { return RunPlan(e, Q7Plan(d)); }

// =====================================================================
// Q8: National market share.
// =====================================================================
RunResult Q8(Engine* e, const TpchData& d) {
  const i64 steel =
      CodeOf(TypeSyllable1(), "ECONOMY") * 25 +
      CodeOf(TypeSyllable2(), "ANODIZED") * 5 +
      CodeOf(TypeSyllable3(), "STEEL");
  auto part_f = Sel(e, Scan(e, d.part, {"p_partkey", "p_type_code"}),
                    Eq(Col("p_type_code"), Lit(steel)), "q8/part");
  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "l_partkey";
  pj.probe_outputs = {"l_orderkey", "l_suppkey", "l_extendedprice",
                      "l_discount"};
  pj.use_bloom = true;
  auto l1 = Join(e, std::move(part_f),
                 Scan(e, d.lineitem,
                      {"l_partkey", "l_orderkey", "l_suppkey",
                       "l_extendedprice", "l_discount"}),
                 pj, "q8/part_join");

  auto orders =
      Sel(e, Scan(e, d.orders, {"o_orderkey", "o_custkey", "o_orderdate",
                                "o_orderyear"}),
          RangeI64("o_orderdate", Date(1995, 1, 1), Date(1997, 1, 1)),
          "q8/orders");
  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_custkey", "o_custkey"},
                      {"o_orderyear", "o_orderyear"}};
  oj.probe_outputs = {"l_suppkey", "l_extendedprice", "l_discount"};
  oj.use_bloom = true;
  auto l2 = Join(e, std::move(orders), std::move(l1), oj,
                 "q8/orders_join");

  // Customers in AMERICA.
  auto nations = NationsOfRegion(e, d, "AMERICA", "q8");
  HashJoinSpec cn;
  cn.build_key = "n_nationkey";
  cn.probe_key = "c_nationkey";
  cn.kind = HashJoinSpec::Kind::kSemi;
  auto cust_am = Join(e, std::move(nations),
                      Scan(e, d.customer, {"c_custkey", "c_nationkey"}),
                      cn, "q8/customer_region");
  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.kind = HashJoinSpec::Kind::kSemi;
  auto l3 = Join(e, std::move(cust_am), std::move(l2), cj,
                 "q8/customer_semi");

  // Supplier nation for every line.
  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_nationkey", "supp_nation_code"}};
  sj.probe_outputs = {"o_orderyear", "l_extendedprice", "l_discount"};
  auto l4 = Join(e, Scan(e, d.supplier, {"s_suppkey", "s_nationkey"}),
                 std::move(l3), sj, "q8/supplier_join");
  std::vector<Out> outs;
  outs.push_back({"o_orderyear", Col("o_orderyear")});
  outs.push_back({"supp_nation_code", Col("supp_nation_code")});
  outs.push_back({"volume", Revenue()});
  auto proj = Proj(e, std::move(l4), std::move(outs), "q8/project");
  auto t = RunToTable(e, *proj);

  // Total volume per year and BRAZIL volume per year; share = ratio.
  std::vector<Agg> a1;
  a1.push_back({"sum", Col("volume"), "total"});
  HashAggOperator total_agg(e, Scan(e, t.get(), {"o_orderyear", "volume"}),
                            {{"o_orderyear", 11}}, {"o_orderyear"},
                            std::move(a1), "q8/total_agg");
  auto totals = RunToTable(e, total_agg);

  auto brazil_rows =
      Sel(e, Scan(e, t.get()),
          Eq(Col("supp_nation_code"), Lit(NationCode("BRAZIL"))),
          "q8/brazil");
  std::vector<Agg> a2;
  a2.push_back({"sum", Col("volume"), "brazil_volume"});
  HashAggOperator brazil_agg(e, std::move(brazil_rows),
                             {{"o_orderyear", 11}}, {"o_orderyear"},
                             std::move(a2), "q8/brazil_agg");
  auto brazil = RunToTable(e, brazil_agg);

  HashJoinSpec fj;
  fj.build_key = "o_orderyear";
  fj.probe_key = "o_orderyear";
  fj.build_outputs = {{"brazil_volume", "brazil_volume"}};
  fj.probe_outputs = {"o_orderyear", "total"};
  auto joinf = Join(e, Scan(e, brazil.get()), Scan(e, totals.get()), fj,
                    "q8/share_join");
  std::vector<Out> fouts;
  fouts.push_back({"o_orderyear", Col("o_orderyear")});
  fouts.push_back({"mkt_share", Div(Col("brazil_volume"), Col("total"))});
  auto projf = Proj(e, std::move(joinf), std::move(fouts), "q8/share");
  SortOperator sort(e, std::move(projf), {{"o_orderyear", false}});
  return e->Run(sort);
}

// =====================================================================
// Q9: Product type profit measure.
// =====================================================================
RunResult Q9(Engine* e, const TpchData& d) {
  auto part_f = Sel(e, Scan(e, d.part, {"p_partkey", "p_name"}),
                    StrContains("p_name", "green"), "q9/part");
  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "l_partkey";
  pj.probe_outputs = {"l_orderkey", "l_suppkey", "l_pskey",
                      "l_quantity_f", "l_extendedprice", "l_discount"};
  pj.use_bloom = true;
  auto l1 = Join(e, std::move(part_f),
                 Scan(e, d.lineitem,
                      {"l_partkey", "l_orderkey", "l_suppkey", "l_pskey",
                       "l_quantity_f", "l_extendedprice", "l_discount"}),
                 pj, "q9/part_join");

  HashJoinSpec psj;
  psj.build_key = "ps_pskey";
  psj.probe_key = "l_pskey";
  psj.build_outputs = {{"ps_supplycost", "ps_supplycost"}};
  psj.probe_outputs = {"l_orderkey", "l_suppkey", "l_quantity_f",
                       "l_extendedprice", "l_discount"};
  auto l2 = Join(e, Scan(e, d.partsupp, {"ps_pskey", "ps_supplycost"}),
                 std::move(l1), psj, "q9/partsupp_join");

  HashJoinSpec oj;
  oj.build_key = "o_orderkey";
  oj.probe_key = "l_orderkey";
  oj.build_outputs = {{"o_orderyear", "o_orderyear"}};
  oj.probe_outputs = {"l_suppkey", "l_quantity_f", "l_extendedprice",
                      "l_discount", "ps_supplycost"};
  auto l3 = Join(e, Scan(e, d.orders, {"o_orderkey", "o_orderyear"}),
                 std::move(l2), oj, "q9/orders_join");

  // supplier -> nation name.
  HashJoinSpec nj;
  nj.build_key = "n_nationkey";
  nj.probe_key = "s_nationkey";
  nj.build_outputs = {{"n_name", "n_name"}};
  nj.probe_outputs = {"s_suppkey", "s_nationkey"};
  auto supp_n = Join(e, Scan(e, d.nation, {"n_nationkey", "n_name"}),
                     Scan(e, d.supplier, {"s_suppkey", "s_nationkey"}),
                     nj, "q9/supplier_nation");
  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_nationkey", "s_nationkey"},
                      {"n_name", "n_name"}};
  sj.probe_outputs = {"o_orderyear", "l_quantity_f", "l_extendedprice",
                      "l_discount", "ps_supplycost"};
  auto l4 =
      Join(e, std::move(supp_n), std::move(l3), sj, "q9/supplier_join");

  std::vector<Out> outs;
  outs.push_back({"s_nationkey", Col("s_nationkey")});
  outs.push_back({"n_name", Col("n_name")});
  outs.push_back({"o_orderyear", Col("o_orderyear")});
  outs.push_back({"amount",
                  Sub(Revenue(),
                      Mul(Col("ps_supplycost"), Col("l_quantity_f")))});
  auto proj = Proj(e, std::move(l4), std::move(outs), "q9/project");
  std::vector<Agg> aggs;
  aggs.push_back({"sum", Col("amount"), "sum_profit"});
  auto agg = std::make_unique<HashAggOperator>(
      e, std::move(proj),
      std::vector<GK>{{"s_nationkey", 5}, {"o_orderyear", 11}},
      std::vector<std::string>{"n_name", "o_orderyear"}, std::move(aggs),
      "q9/agg");
  SortOperator sort(e, std::move(agg),
                    {{"n_name", false}, {"o_orderyear", true}});
  return e->Run(sort);
}

// =====================================================================
// Q10: Returned item reporting — the agg-feeding-join plan: the
// per-customer revenue aggregation materializes and the customer /
// nation joins above it scan the intermediate (tpch/plans.cc).
// =====================================================================
RunResult Q10(Engine* e, const TpchData& d) {
  return RunPlan(e, Q10Plan(d));
}

// =====================================================================
// Q11: Important stock identification — as a plan: the threshold is a
// scalar subquery folded into the HAVING filter (tpch/plans.cc).
// =====================================================================
RunResult Q11(Engine* e, const TpchData& d) {
  return RunPlan(e, Q11Plan(d));
}

// =====================================================================
// Q12: Shipping modes and order priority (the Figure 2 query) — as a
// plan with the merge join on the clustered orderkey inside it; the
// staged compiler proves the key order and keeps op_merge_join
// (Figure 4(d)'s fetch primitives materialize the priority column).
// =====================================================================
RunResult Q12(Engine* e, const TpchData& d) {
  return RunPlan(e, Q12Plan(d));
}

// =====================================================================
// Q13: Customer distribution — as a plan: the LEFT OUTER hash join
// patches no-order customers in with a default count (tpch/plans.cc).
// =====================================================================
RunResult Q13(Engine* e, const TpchData& d) {
  return RunPlan(e, Q13Plan(d));
}

// =====================================================================
// Q14: Promotion effect — as a plan: promo and total revenue aggregate
// on a constant key and join, the share computes in the projection
// above (both hash-join sides fed by aggregation stages).
// =====================================================================
RunResult Q14(Engine* e, const TpchData& d) {
  RunResult r = RunPlan(e, Q14Plan(d));
  // Degenerate windows lose the plan's division guard: an empty date
  // window joins to zero rows, and an all-zero revenue total divides to
  // inf/NaN. Keep the historical contract of one finite zero row
  // (callers index row 0 of the single-value result).
  const bool ok = r.table->row_count() == 1 &&
                  std::isfinite(r.table->FindColumn("promo_revenue")
                                    ->Data<f64>()[0]);
  if (!ok) {
    r.table = std::make_unique<Table>("result");
    r.table->AddColumn("promo_revenue", PhysicalType::kF64)
        ->Append<f64>(0.0);
    r.table->set_row_count(1);
    r.rows_emitted = 1;
  }
  return r;
}

// =====================================================================
// Q15: Top supplier — as a plan: MAX(total_revenue) is a scalar
// subquery folded into the top filter (tpch/plans.cc).
// =====================================================================
RunResult Q15(Engine* e, const TpchData& d) {
  return RunPlan(e, Q15Plan(d));
}

// =====================================================================
// Q16: Parts/supplier relationship.
// =====================================================================
RunResult Q16(Engine* e, const TpchData& d) {
  std::vector<ExprPtr> pp;
  pp.push_back(Ne(Col("p_brand_code"),
                  Lit((4 - 1) * 5 + (5 - 1))));  // Brand#45
  pp.push_back(StrNotPrefix("p_type", "MEDIUM POLISHED"));
  pp.push_back(InI64("p_size", {49, 14, 23, 45, 19, 3, 36, 9}));
  auto part_f = Sel(e, Scan(e, d.part,
                            {"p_partkey", "p_brand", "p_brand_code",
                             "p_type", "p_type_code", "p_size"}),
                    AndAll(std::move(pp)), "q16/part");
  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "ps_partkey";
  pj.build_outputs = {{"p_brand", "p_brand"},
                      {"p_brand_code", "p_brand_code"},
                      {"p_type", "p_type"},
                      {"p_type_code", "p_type_code"},
                      {"p_size", "p_size"}};
  pj.probe_outputs = {"ps_suppkey"};
  pj.use_bloom = true;
  auto ps = Join(e, std::move(part_f),
                 Scan(e, d.partsupp, {"ps_partkey", "ps_suppkey"}), pj,
                 "q16/partsupp_join");

  auto bad = Sel(e, Scan(e, d.supplier, {"s_suppkey", "s_comment"}),
                 StrContains("s_comment", "Customer Complaints"),
                 "q16/complaints");
  HashJoinSpec aj;
  aj.build_key = "s_suppkey";
  aj.probe_key = "ps_suppkey";
  aj.kind = HashJoinSpec::Kind::kAnti;
  auto good = Join(e, std::move(bad), std::move(ps), aj, "q16/anti");

  // Distinct suppliers per (brand, type, size): dedupe then count.
  std::vector<Agg> da;
  da.push_back({"count", nullptr, "dummy"});
  HashAggOperator dedupe(
      e, std::move(good),
      {{"p_brand_code", 5}, {"p_type_code", 8}, {"p_size", 6},
       {"ps_suppkey", 24}},
      {"p_brand", "p_type", "p_size", "p_brand_code", "p_type_code"},
      std::move(da), "q16/dedupe");
  auto t = RunToTable(e, dedupe);

  std::vector<Agg> ca;
  ca.push_back({"count", nullptr, "supplier_cnt"});
  auto cnt = std::make_unique<HashAggOperator>(
      e, Scan(e, t.get()),
      std::vector<GK>{{"p_brand_code", 5}, {"p_type_code", 8},
                      {"p_size", 6}},
      std::vector<std::string>{"p_brand", "p_type", "p_size"},
      std::move(ca), "q16/count");
  SortOperator sort(e, std::move(cnt),
                    {{"supplier_cnt", true},
                     {"p_brand", false},
                     {"p_type", false},
                     {"p_size", false}});
  return e->Run(sort);
}

// =====================================================================
// Q17: Small-quantity-order revenue — as a plan: the per-part average
// joins back against the same pipeline, the threshold computes in a
// projection above it (tpch/plans.cc).
// =====================================================================
RunResult Q17(Engine* e, const TpchData& d) {
  return RunPlan(e, Q17Plan(d));
}

// =====================================================================
// Q18: Large volume customers.
// =====================================================================
RunResult Q18(Engine* e, const TpchData& d) {
  std::vector<Agg> qa;
  qa.push_back({"sum", Col("l_quantity"), "sum_qty", PhysicalType::kI64});
  auto per_order = std::make_unique<HashAggOperator>(
      e, Scan(e, d.lineitem, {"l_orderkey", "l_quantity"}),
      std::vector<GK>{{"l_orderkey", 36}},
      std::vector<std::string>{"l_orderkey"}, std::move(qa), "q18/agg");
  auto big = Sel(e, std::move(per_order), Gt(Col("sum_qty"), Lit(300)),
                 "q18/having");
  HashJoinSpec oj;
  oj.build_key = "l_orderkey";
  oj.probe_key = "o_orderkey";
  oj.build_outputs = {{"sum_qty", "sum_qty"}};
  oj.probe_outputs = {"o_orderkey", "o_custkey", "o_orderdate",
                      "o_totalprice"};
  oj.use_bloom = true;
  auto orders = Join(e, std::move(big),
                     Scan(e, d.orders, {"o_orderkey", "o_custkey",
                                        "o_orderdate", "o_totalprice"}),
                     oj, "q18/orders_join");
  HashJoinSpec cj;
  cj.build_key = "c_custkey";
  cj.probe_key = "o_custkey";
  cj.build_outputs = {{"c_name", "c_name"}};
  cj.probe_outputs = {"o_custkey", "o_orderkey", "o_orderdate",
                      "o_totalprice", "sum_qty"};
  auto with_cust = Join(e, Scan(e, d.customer, {"c_custkey", "c_name"}),
                        std::move(orders), cj, "q18/customer_join");
  SortOperator sort(e, std::move(with_cust),
                    {{"o_totalprice", true}, {"o_orderdate", false}},
                    100);
  return e->Run(sort);
}

// =====================================================================
// Q19: Discounted revenue (the big OR-of-ANDs predicate).
// =====================================================================
RunResult Q19(Engine* e, const TpchData& d) {
  std::vector<ExprPtr> lp;
  lp.push_back(InI64("l_shipmode_code", {CodeOf(ShipModes(), "AIR"),
                                         CodeOf(ShipModes(),
                                                "REG AIR")}));
  lp.push_back(Eq(Col("l_shipinstruct_code"),
                  Lit(CodeOf(ShipInstructs(), "DELIVER IN PERSON"))));
  auto items = Sel(e, Scan(e, d.lineitem,
                           {"l_partkey", "l_quantity", "l_extendedprice",
                            "l_discount", "l_shipmode_code",
                            "l_shipinstruct_code"}),
                   AndAll(std::move(lp)), "q19/lineitem");
  HashJoinSpec pj;
  pj.build_key = "p_partkey";
  pj.probe_key = "l_partkey";
  pj.build_outputs = {{"p_brand_code", "p_brand_code"},
                      {"p_container_code", "p_container_code"},
                      {"p_size", "p_size"}};
  pj.probe_outputs = {"l_quantity", "l_extendedprice", "l_discount"};
  auto joined = Join(e,
                     Scan(e, d.part, {"p_partkey", "p_brand_code",
                                      "p_container_code", "p_size"}),
                     std::move(items), pj, "q19/join");

  auto container_codes = [](std::vector<std::pair<const char*,
                                                  const char*>> pairs) {
    std::vector<i64> codes;
    for (const auto& [a, b] : pairs) {
      codes.push_back(CodeOf(ContainerSyllable1(), a) * 8 +
                      CodeOf(ContainerSyllable2(), b));
    }
    return codes;
  };
  auto branch = [&](int brand_m, int brand_n, std::vector<i64> containers,
                    i64 qty_lo, i64 qty_hi, i64 size_hi) {
    std::vector<ExprPtr> preds;
    preds.push_back(Eq(Col("p_brand_code"),
                       Lit((brand_m - 1) * 5 + (brand_n - 1))));
    preds.push_back(InI64("p_container_code", std::move(containers)));
    preds.push_back(Ge(Col("l_quantity"), Lit(qty_lo)));
    preds.push_back(Le(Col("l_quantity"), Lit(qty_hi)));
    preds.push_back(Ge(Col("p_size"), Lit(i64{1})));
    preds.push_back(Le(Col("p_size"), Lit(size_hi)));
    return AndAll(std::move(preds));
  };
  std::vector<ExprPtr> branches;
  branches.push_back(branch(
      1, 2,
      container_codes({{"SM", "CASE"}, {"SM", "BOX"}, {"SM", "PACK"},
                       {"SM", "PKG"}}),
      1, 11, 5));
  branches.push_back(branch(
      2, 3,
      container_codes({{"MED", "BAG"}, {"MED", "BOX"}, {"MED", "PKG"},
                       {"MED", "PACK"}}),
      10, 20, 10));
  branches.push_back(branch(
      3, 4,
      container_codes({{"LG", "CASE"}, {"LG", "BOX"}, {"LG", "PACK"},
                       {"LG", "PKG"}}),
      20, 30, 15));
  auto filtered = Sel(e, std::move(joined), OrAny(std::move(branches)),
                      "q19/or_filter");
  std::vector<Out> outs;
  outs.push_back({"revenue", Revenue()});
  auto proj = Proj(e, std::move(filtered), std::move(outs),
                   "q19/project");
  std::vector<Agg> aggs;
  aggs.push_back({"sum", Col("revenue"), "revenue"});
  HashAggOperator agg(e, std::move(proj), {}, {}, std::move(aggs),
                      "q19/agg");
  return e->Run(agg);
}

// =====================================================================
// Q20: Potential part promotion.
// =====================================================================
RunResult Q20(Engine* e, const TpchData& d) {
  // Quantity shipped in 1994 per (part, supplier).
  auto shipped = Sel(
      e, Scan(e, d.lineitem, {"l_pskey", "l_quantity_f", "l_shipdate"}),
      RangeI64("l_shipdate", Date(1994, 1, 1), Date(1995, 1, 1)),
      "q20/shipped");
  std::vector<Agg> sa;
  sa.push_back({"sum", Col("l_quantity_f"), "sum_qty"});
  HashAggOperator qty_agg(e, std::move(shipped), {{"l_pskey", 48}},
                          {"l_pskey"}, std::move(sa), "q20/qty_agg");
  auto qty = RunToTable(e, qty_agg);

  // partsupp rows with availqty > 0.5 * shipped qty.
  HashJoinSpec qj;
  qj.build_key = "l_pskey";
  qj.probe_key = "ps_pskey";
  qj.build_outputs = {{"sum_qty", "sum_qty"}};
  qj.probe_outputs = {"ps_partkey", "ps_suppkey", "ps_availqty_f"};
  auto ps = Join(e, Scan(e, qty.get()),
                 Scan(e, d.partsupp, {"ps_pskey", "ps_partkey",
                                      "ps_suppkey", "ps_availqty_f"}),
                 qj, "q20/qty_join");
  std::vector<Out> houts;
  houts.push_back({"ps_partkey", Col("ps_partkey")});
  houts.push_back({"ps_suppkey", Col("ps_suppkey")});
  houts.push_back({"ps_availqty_f", Col("ps_availqty_f")});
  houts.push_back({"half_qty", Mul(Col("sum_qty"), Lit(0.5))});
  auto hproj = Proj(e, std::move(ps), std::move(houts), "q20/half");
  auto excess = Sel(e, std::move(hproj),
                    Gt(Col("ps_availqty_f"), Col("half_qty")),
                    "q20/excess");

  // Restrict to forest% parts (semi join).
  auto part_f = Sel(e, Scan(e, d.part, {"p_partkey", "p_name"}),
                    StrPrefix("p_name", "forest"), "q20/part");
  HashJoinSpec fj;
  fj.build_key = "p_partkey";
  fj.probe_key = "ps_partkey";
  fj.kind = HashJoinSpec::Kind::kSemi;
  auto forest = Join(e, std::move(part_f), std::move(excess), fj,
                     "q20/forest_semi");

  // Distinct supplier keys.
  std::vector<Agg> da;
  da.push_back({"count", nullptr, "dummy"});
  HashAggOperator dedupe(e, std::move(forest), {{"ps_suppkey", 24}},
                         {"ps_suppkey"}, std::move(da), "q20/dedupe");
  auto supp_keys = RunToTable(e, dedupe);

  // Suppliers in CANADA among them.
  auto canada = SupplierOfNation(
      e, d, "CANADA", {"s_suppkey", "s_name", "s_address", "s_nationkey"},
      "q20");
  HashJoinSpec sj;
  sj.build_key = "ps_suppkey";
  sj.probe_key = "s_suppkey";
  sj.kind = HashJoinSpec::Kind::kSemi;
  auto result = Join(e, Scan(e, supp_keys.get(), {"ps_suppkey"}),
                     std::move(canada), sj, "q20/supplier_semi");
  SortOperator sort(e, std::move(result), {{"s_name", false}});
  return e->Run(sort);
}

// =====================================================================
// Q21: Suppliers who kept orders waiting.
// =====================================================================
RunResult Q21(Engine* e, const TpchData& d) {
  // Distinct (orderkey, suppkey) pairs over all lineitems -> number of
  // distinct suppliers per order.
  std::vector<Agg> dummy1;
  dummy1.push_back({"count", nullptr, "dummy"});
  HashAggOperator all_pairs(
      e, Scan(e, d.lineitem, {"l_orderkey", "l_suppkey"}),
      {{"l_orderkey", 36}, {"l_suppkey", 24}}, {"l_orderkey"},
      std::move(dummy1), "q21/all_pairs");
  auto pairs_tbl = RunToTable(e, all_pairs);
  std::vector<Agg> c1;
  c1.push_back({"count", nullptr, "n_supp"});
  HashAggOperator supp_per_order(e, Scan(e, pairs_tbl.get(),
                                         {"l_orderkey"}),
                                 {{"l_orderkey", 36}}, {"l_orderkey"},
                                 std::move(c1), "q21/supp_per_order");
  auto n_supp = RunToTable(e, supp_per_order);

  // Same for *late* lineitems (receipt > commit).
  auto late = Sel(e, Scan(e, d.lineitem,
                          {"l_orderkey", "l_suppkey", "l_commitdate",
                           "l_receiptdate"}),
                  Gt(Col("l_receiptdate"), Col("l_commitdate")),
                  "q21/late");
  std::vector<Agg> dummy2;
  dummy2.push_back({"count", nullptr, "dummy"});
  HashAggOperator late_pairs(e, std::move(late),
                             {{"l_orderkey", 36}, {"l_suppkey", 24}},
                             {"l_orderkey"}, std::move(dummy2),
                             "q21/late_pairs");
  auto late_tbl = RunToTable(e, late_pairs);
  std::vector<Agg> c2;
  c2.push_back({"count", nullptr, "n_late_supp"});
  HashAggOperator late_per_order(e, Scan(e, late_tbl.get(),
                                         {"l_orderkey"}),
                                 {{"l_orderkey", 36}}, {"l_orderkey"},
                                 std::move(c2), "q21/late_per_order");
  auto n_late = RunToTable(e, late_per_order);

  // l1: late lines of SAUDI ARABIA suppliers on F-status orders.
  auto saudi = SupplierOfNation(e, d, "SAUDI ARABIA",
                                {"s_suppkey", "s_name", "s_nationkey"},
                                "q21");
  auto late2 = Sel(e, Scan(e, d.lineitem,
                           {"l_orderkey", "l_suppkey", "l_commitdate",
                            "l_receiptdate"}),
                   Gt(Col("l_receiptdate"), Col("l_commitdate")),
                   "q21/late2");
  HashJoinSpec sj;
  sj.build_key = "s_suppkey";
  sj.probe_key = "l_suppkey";
  sj.build_outputs = {{"s_name", "s_name"}};
  sj.probe_outputs = {"l_orderkey", "l_suppkey"};
  sj.use_bloom = true;
  auto l1 = Join(e, std::move(saudi), std::move(late2), sj,
                 "q21/saudi_join");

  auto orders_f = Sel(e, Scan(e, d.orders, {"o_orderkey",
                                            "o_orderstatus_code"}),
                      Eq(Col("o_orderstatus_code"), Lit(i64{0})),
                      "q21/orders_f");
  HashJoinSpec ofj;
  ofj.build_key = "o_orderkey";
  ofj.probe_key = "l_orderkey";
  ofj.kind = HashJoinSpec::Kind::kSemi;
  auto l2 = Join(e, std::move(orders_f), std::move(l1), ofj,
                 "q21/status_semi");

  // exists other supplier: n_supp >= 2.
  auto multi = Sel(e, Scan(e, n_supp.get()),
                   Ge(Col("n_supp"), Lit(i64{2})), "q21/multi");
  HashJoinSpec mj;
  mj.build_key = "l_orderkey";
  mj.probe_key = "l_orderkey";
  mj.kind = HashJoinSpec::Kind::kSemi;
  auto l3 = Join(e, std::move(multi), std::move(l2), mj,
                 "q21/exists_semi");

  // not exists other late supplier: n_late_supp == 1.
  auto single_late = Sel(e, Scan(e, n_late.get()),
                         Eq(Col("n_late_supp"), Lit(i64{1})),
                         "q21/single_late");
  HashJoinSpec lj;
  lj.build_key = "l_orderkey";
  lj.probe_key = "l_orderkey";
  lj.kind = HashJoinSpec::Kind::kSemi;
  auto l4 = Join(e, std::move(single_late), std::move(l3), lj,
                 "q21/notexists_semi");

  std::vector<Agg> fa;
  fa.push_back({"count", nullptr, "numwait"});
  auto agg = std::make_unique<HashAggOperator>(
      e, std::move(l4), std::vector<GK>{{"l_suppkey", 24}},
      std::vector<std::string>{"s_name"}, std::move(fa), "q21/agg");
  SortOperator sort(e, std::move(agg),
                    {{"numwait", true}, {"s_name", false}}, 100);
  return e->Run(sort);
}

// =====================================================================
// Q22: Global sales opportunity — as a plan: the average positive
// balance is a scalar subquery, the country code a substring value
// expression over c_phone (tpch/plans.cc).
// =====================================================================
RunResult Q22(Engine* e, const TpchData& d) {
  return RunPlan(e, Q22Plan(d));
}

}  // namespace

const char* QueryName(int q) {
  static const char* kNames[23] = {
      "",
      "Q01 pricing summary",      "Q02 minimum cost supplier",
      "Q03 shipping priority",    "Q04 order priority checking",
      "Q05 local supplier volume", "Q06 forecasting revenue",
      "Q07 volume shipping",      "Q08 national market share",
      "Q09 product type profit",  "Q10 returned items",
      "Q11 important stock",      "Q12 shipping modes",
      "Q13 customer distribution", "Q14 promotion effect",
      "Q15 top supplier",         "Q16 parts/supplier relation",
      "Q17 small-quantity orders", "Q18 large volume customers",
      "Q19 discounted revenue",   "Q20 part promotion",
      "Q21 suppliers kept waiting", "Q22 global sales opportunity"};
  MA_CHECK(q >= 1 && q <= kNumQueries);
  return kNames[q];
}

namespace {

RunResult DispatchQuery(Engine* e, const TpchData& d, int q) {
  switch (q) {
    case 1: return Q1(e, d);
    case 2: return Q2(e, d);
    case 3: return Q3(e, d);
    case 4: return Q4(e, d);
    case 5: return Q5(e, d);
    case 6: return Q6(e, d);
    case 7: return Q7(e, d);
    case 8: return Q8(e, d);
    case 9: return Q9(e, d);
    case 10: return Q10(e, d);
    case 11: return Q11(e, d);
    case 12: return Q12(e, d);
    case 13: return Q13(e, d);
    case 14: return Q14(e, d);
    case 15: return Q15(e, d);
    case 16: return Q16(e, d);
    case 17: return Q17(e, d);
    case 18: return Q18(e, d);
    case 19: return Q19(e, d);
    case 20: return Q20(e, d);
    case 21: return Q21(e, d);
    case 22: return Q22(e, d);
    default:
      MA_CHECK(false);
      return RunResult{};
  }
}

}  // namespace

RunResult RunQuery(Engine* e, const TpchData& d, int q) {
  // Multi-stage queries run several plans; per-query time and the
  // primitive-cycle total must cover all of them, so measure around the
  // whole query here rather than relying on the last stage's RunResult.
  const u64 prim0 = e->TotalPrimitiveCycles();
  const u64 t0 = CycleClock::Now();
  RunResult r = DispatchQuery(e, d, q);
  r.total_cycles = CycleClock::Now() - t0;
  r.seconds =
      static_cast<f64>(r.total_cycles) / CycleClock::FrequencyHz();
  r.stages.primitives = e->TotalPrimitiveCycles() - prim0;
  return r;
}

}  // namespace ma::tpch
