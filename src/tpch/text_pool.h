// TPC-H text domains: the official value lists (nations, regions, types,
// containers, segments, priorities, ship modes, colors) plus a small
// comment generator. Codes are list indices, so dictionary-encoded
// columns can be produced during generation with stable code values.
#ifndef MA_TPCH_TEXT_POOL_H_
#define MA_TPCH_TEXT_POOL_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace ma::tpch {

/// Official TPC-H lists.
const std::vector<std::string>& RegionNames();    // 5
const std::vector<std::string>& NationNames();    // 25
/// Region of nation i (index into RegionNames), per the TPC-H spec.
int NationRegion(int nation);
const std::vector<std::string>& Segments();       // 5
const std::vector<std::string>& Priorities();     // 5
const std::vector<std::string>& ShipModes();      // 7
const std::vector<std::string>& ShipInstructs();  // 4
const std::vector<std::string>& Colors();         // 92 p_name words
const std::vector<std::string>& TypeSyllable1();  // 6
const std::vector<std::string>& TypeSyllable2();  // 5
const std::vector<std::string>& TypeSyllable3();  // 5
const std::vector<std::string>& ContainerSyllable1();  // 5
const std::vector<std::string>& ContainerSyllable2();  // 8

/// Index of `value` in `list`; -1 when absent. Used by query plans to
/// turn string constants into dictionary codes.
int CodeOf(const std::vector<std::string>& list, const std::string& value);

/// Random comment of `min_words..max_words` words. With probability
/// `phrase_prob`, injects `phrase` (e.g. "special requests") so the
/// NOT LIKE predicates of Q13/Q16 have something to reject.
std::string MakeComment(Rng* rng, int min_words, int max_words,
                        const std::string& phrase = "",
                        f64 phrase_prob = 0.0);

/// "Brand#MN" with M,N in 1..5.
std::string MakeBrand(Rng* rng, int* code_out);

/// Part name: 5 distinct colors joined by spaces.
std::string MakePartName(Rng* rng);

/// Phone number with the given country code (cc in 10..34).
std::string MakePhone(Rng* rng, int country_code);

}  // namespace ma::tpch

#endif  // MA_TPCH_TEXT_POOL_H_
