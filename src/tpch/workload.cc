#include "tpch/workload.h"

#include <cmath>
#include <cstdio>

namespace ma::tpch {

u64 ModeRun::TotalPrimitiveCycles() const {
  u64 total = 0;
  for (const auto& q : instances) {
    for (const auto& inst : q) total += inst.cycles;
  }
  return total;
}

u64 ModeRun::AffectedCycles(FlavorSetId set) const {
  u64 total = 0;
  for (const auto& q : instances) {
    for (const auto& inst : q) {
      if (inst.affected_sets & FlavorSetBit(set)) total += inst.cycles;
    }
  }
  return total;
}

f64 ModeRun::GeoMeanSeconds() const {
  f64 log_sum = 0;
  for (const f64 s : query_seconds) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<f64>(query_seconds.size()));
}

ModeRun RunAllQueries(const EngineConfig& config, const TpchData& data,
                      std::string name, bool quiet) {
  ModeRun run;
  run.name = std::move(name);
  run.query_seconds.resize(kNumQueries);
  run.instances.resize(kNumQueries);
  for (int q = 1; q <= kNumQueries; ++q) {
    Engine engine(config);
    const RunResult r = RunQuery(&engine, data, q);
    run.query_seconds[q - 1] = r.seconds;
    for (const auto& inst : engine.instances()) {
      InstanceProfile p;
      p.label = inst->label();
      p.signature = inst->entry()->signature;
      for (int s = 0; s < static_cast<int>(FlavorSetId::kNumSets); ++s) {
        const auto set = static_cast<FlavorSetId>(s);
        if (set != FlavorSetId::kDefault && inst->AffectedBy(set)) {
          p.affected_sets |= FlavorSetBit(set);
        }
      }
      p.calls = inst->calls();
      p.tuples = inst->tuples();
      p.cycles = inst->cycles();
      if (inst->aph() != nullptr) p.aph = *inst->aph();
      run.instances[q - 1].push_back(std::move(p));
    }
    if (!quiet) {
      std::printf("  [%s] %-28s %8.3f ms, %zu rows\n", run.name.c_str(),
                  QueryName(q), r.seconds * 1e3,
                  r.table ? r.table->row_count() : 0);
    }
  }
  return run;
}

EngineConfig DefaultConfig() {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kDefault;
  return cfg;
}

EngineConfig ForcedConfig(const std::string& flavor) {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kForcedFlavor;
  cfg.adaptive.forced_flavor = flavor;
  return cfg;
}

EngineConfig HeuristicConfig() {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kHeuristic;
  return cfg;
}

EngineConfig AdaptiveConfig(u32 sets) {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kAdaptive;
  cfg.adaptive.enabled_sets = sets;
  // The paper tuned vw-greedy(1024,8,2) on instances making 16K-32K
  // calls (SF100). Our scaled-down workload makes 1-3K calls per
  // instance, so the exploration period scales down proportionally —
  // same explore/exploit ratio, faster reaction.
  cfg.adaptive.params.explore_period = 256;
  cfg.adaptive.params.exploit_period = 8;
  cfg.adaptive.params.explore_length = 2;
  return cfg;
}

u64 OptAffectedCycles(const std::vector<const ModeRun*>& runs,
                      FlavorSetId set) {
  MA_CHECK(!runs.empty());
  u64 opt = 0;
  for (size_t q = 0; q < runs[0]->instances.size(); ++q) {
    for (size_t i = 0; i < runs[0]->instances[q].size(); ++i) {
      if (!(runs[0]->instances[q][i].affected_sets & FlavorSetBit(set))) {
        continue;
      }
      std::vector<const Aph*> aphs;
      for (const ModeRun* run : runs) {
        // Instance alignment can drift when a mode changes plan shape
        // (it does not: plans are mode-independent); guard anyway.
        if (q < run->instances.size() &&
            i < run->instances[q].size()) {
          aphs.push_back(&run->instances[q][i].aph);
        }
      }
      opt += Aph::OptCycles(aphs);
    }
  }
  return opt;
}

}  // namespace ma::tpch
