#include "tpch/workload.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "common/cycleclock.h"
#include "plan/query_session.h"
#include "storage/table_fingerprint.h"
#include "tpch/plans.h"

namespace ma::tpch {

u64 ModeRun::TotalPrimitiveCycles() const {
  u64 total = 0;
  for (const auto& q : instances) {
    for (const auto& inst : q) total += inst.cycles;
  }
  return total;
}

u64 ModeRun::AffectedCycles(FlavorSetId set) const {
  u64 total = 0;
  for (const auto& q : instances) {
    for (const auto& inst : q) {
      if (inst.affected_sets & FlavorSetBit(set)) total += inst.cycles;
    }
  }
  return total;
}

f64 ModeRun::GeoMeanSeconds() const {
  f64 log_sum = 0;
  for (const f64 s : query_seconds) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<f64>(query_seconds.size()));
}

namespace {

/// Folds one engine's primitive instances into InstanceProfile records.
void HarvestProfiles(const Engine& engine,
                     std::vector<InstanceProfile>* out) {
  for (const auto& inst : engine.instances()) {
    InstanceProfile p;
    p.label = inst->label();
    p.signature = inst->entry()->signature;
    for (int s = 0; s < static_cast<int>(FlavorSetId::kNumSets); ++s) {
      const auto set = static_cast<FlavorSetId>(s);
      if (set != FlavorSetId::kDefault && inst->AffectedBy(set)) {
        p.affected_sets |= FlavorSetBit(set);
      }
    }
    p.calls = inst->calls();
    p.tuples = inst->tuples();
    p.cycles = inst->cycles();
    if (inst->aph() != nullptr) p.aph = *inst->aph();
    out->push_back(std::move(p));
  }
}

}  // namespace

ModeRun RunAllQueries(const EngineConfig& config, const TpchData& data,
                      std::string name, bool quiet) {
  ModeRun run;
  run.name = std::move(name);
  run.query_seconds.resize(kNumQueries);
  run.instances.resize(kNumQueries);
  for (int q = 1; q <= kNumQueries; ++q) {
    RunResult r;
    if (HasPlan(q)) {
      // Plan-ported: the QuerySession path — the same entry point the
      // serving layer drives — with a fresh session per query so
      // instances and bandit state stay per-query. Serial mode keeps
      // primitive call sequences identical across the evaluation modes
      // (the APH alignment the OPT approximation relies on).
      plan::SessionConfig sc;
      sc.engine = config;
      plan::QuerySession session(sc, &PrimitiveDictionary::Global());
      const plan::LogicalPlan p = PlanForQuery(data, q);
      const u64 t0 = CycleClock::Now();
      r = session.Run(p, plan::ExecMode::kSerial);
      r.total_cycles = CycleClock::Now() - t0;
      r.seconds =
          static_cast<f64>(r.total_cycles) / CycleClock::FrequencyHz();
      r.stages.primitives = session.engine()->TotalPrimitiveCycles();
      run.query_seconds[q - 1] = r.seconds;
      HarvestProfiles(*session.engine(), &run.instances[q - 1]);
    } else {
      // Hand-built tree: the legacy Engine path.
      Engine engine(config);
      r = RunQuery(&engine, data, q);
      run.query_seconds[q - 1] = r.seconds;
      HarvestProfiles(engine, &run.instances[q - 1]);
    }
    if (!quiet) {
      std::printf("  [%s] %-28s %8.3f ms, %zu rows\n", run.name.c_str(),
                  QueryName(q), r.seconds * 1e3,
                  r.table ? r.table->row_count() : 0);
    }
  }
  return run;
}

ServeWorkloadReport RunWorkloadConcurrently(const TpchData& data,
                                            const ServeWorkloadConfig& cfg,
                                            bool quiet) {
  // Serial single-tenant baseline: the bytes every concurrent result
  // must reproduce exactly.
  std::map<int, u64> baseline;
  {
    plan::QuerySession session;
    for (int q = 1; q <= kNumQueries; ++q) {
      if (!HasPlan(q)) continue;
      const plan::LogicalPlan p = PlanForQuery(data, q);
      RunResult r = session.Run(p, plan::ExecMode::kSerial);
      MA_CHECK(r.status.ok() && r.table != nullptr);
      baseline[q] = ExactFingerprint(*r.table);
    }
  }

  ServeWorkloadReport report;
  std::mutex report_mu;
  {
    serve::WorkloadServer server(cfg.server);
    std::vector<std::thread> submitters;
    submitters.reserve(cfg.submitters);
    for (int s = 0; s < cfg.submitters; ++s) {
      submitters.emplace_back([&, s] {
        // One injector per submitter: FaultInjector is thread-safe,
        // but per-submitter seeds decorrelate which hits fire.
        FaultInjector injector(cfg.fault_seed + static_cast<u64>(s));
        if (cfg.fault_probability > 0) {
          injector.ArmRandomFailure("engine/batch", cfg.fault_probability,
                                    StatusCode::kInternal,
                                    "injected serve fault");
          injector.ArmRandomFailure("parallel/morsel",
                                    cfg.fault_probability,
                                    StatusCode::kInternal,
                                    "injected serve fault");
        }
        // Plans are borrowed by the server until Wait() — a deque
        // keeps every element's address stable while we keep pushing.
        std::deque<plan::LogicalPlan> plans;
        std::vector<std::pair<int, serve::QueryHandle>> handles;
        for (int round = 0; round < cfg.rounds; ++round) {
          for (int q = 1; q <= kNumQueries; ++q) {
            if (!HasPlan(q)) continue;
            plans.push_back(PlanForQuery(data, q));
            serve::SubmitOptions opts;
            if (cfg.fault_probability > 0) opts.injector = &injector;
            handles.emplace_back(
                q, server.Submit(&plans.back(),
                                 "s" + std::to_string(s) + "/q" +
                                     std::to_string(q),
                                 opts));
          }
        }
        u64 ok = 0, failed = 0, rejected = 0, mism = 0, rej_table = 0;
        for (auto& [q, handle] : handles) {
          const serve::QueryResult& qr = handle.Wait();
          if (qr.run.status.ok()) {
            ++ok;
            if (qr.run.table == nullptr ||
                ExactFingerprint(*qr.run.table) != baseline[q]) {
              ++mism;
            }
          } else if (qr.run.reason == TerminationReason::kRejected) {
            ++rejected;
            if (qr.run.table != nullptr) ++rej_table;
          } else {
            ++failed;
          }
        }
        std::lock_guard<std::mutex> lock(report_mu);
        report.ok += ok;
        report.failed += failed;
        report.rejected += rejected;
        report.mismatches += mism;
        report.rejected_with_table += rej_table;
      });
    }
    for (std::thread& t : submitters) t.join();
    server.Shutdown();
    report.stats = server.stats();
    report.leaked_lease_bytes = server.broker()->leased_bytes();
  }
  if (!quiet) {
    std::printf(
        "  serve: %llu ok, %llu failed, %llu rejected | retries %llu, "
        "degraded %llu | mismatches %llu, leaked %llu bytes\n",
        static_cast<unsigned long long>(report.ok),
        static_cast<unsigned long long>(report.failed),
        static_cast<unsigned long long>(report.rejected),
        static_cast<unsigned long long>(report.stats.retries),
        static_cast<unsigned long long>(report.stats.degraded_to_serial),
        static_cast<unsigned long long>(report.mismatches),
        static_cast<unsigned long long>(report.leaked_lease_bytes));
    std::printf(
        "  knowledge: plan cache %llu hits / %llu misses | %llu "
        "profiles merged, %llu store rows\n",
        static_cast<unsigned long long>(report.stats.plan_cache_hits),
        static_cast<unsigned long long>(report.stats.plan_cache_misses),
        static_cast<unsigned long long>(report.stats.profiles_merged),
        static_cast<unsigned long long>(report.stats.store_profiles));
  }
  return report;
}

EngineConfig DefaultConfig() {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kDefault;
  return cfg;
}

EngineConfig ForcedConfig(const std::string& flavor) {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kForcedFlavor;
  cfg.adaptive.forced_flavor = flavor;
  return cfg;
}

EngineConfig HeuristicConfig() {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kHeuristic;
  return cfg;
}

EngineConfig AdaptiveConfig(u32 sets) {
  EngineConfig cfg;
  cfg.adaptive.mode = ExecMode::kAdaptive;
  cfg.adaptive.enabled_sets = sets;
  // The paper tuned vw-greedy(1024,8,2) on instances making 16K-32K
  // calls (SF100). Our scaled-down workload makes 1-3K calls per
  // instance, so the exploration period scales down proportionally —
  // same explore/exploit ratio, faster reaction.
  cfg.adaptive.params.explore_period = 256;
  cfg.adaptive.params.exploit_period = 8;
  cfg.adaptive.params.explore_length = 2;
  return cfg;
}

u64 OptAffectedCycles(const std::vector<const ModeRun*>& runs,
                      FlavorSetId set) {
  MA_CHECK(!runs.empty());
  u64 opt = 0;
  for (size_t q = 0; q < runs[0]->instances.size(); ++q) {
    for (size_t i = 0; i < runs[0]->instances[q].size(); ++i) {
      if (!(runs[0]->instances[q][i].affected_sets & FlavorSetBit(set))) {
        continue;
      }
      std::vector<const Aph*> aphs;
      for (const ModeRun* run : runs) {
        // Instance alignment can drift when a mode changes plan shape
        // (it does not: plans are mode-independent); guard anyway.
        if (q < run->instances.size() &&
            i < run->instances[q].size()) {
          aphs.push_back(&run->instances[q][i].aph);
        }
      }
      opt += Aph::OptCycles(aphs);
    }
  }
  return opt;
}

}  // namespace ma::tpch
