// Batch: the unit of flow between relational operators — a set of named
// column vectors of equal logical length, plus an optional selection
// vector restricting which positions are live. Passing the selection
// vector along instead of compacting columns is what lets Selection avoid
// copying all columns (paper §1.1).
#ifndef MA_VECTOR_BATCH_H_
#define MA_VECTOR_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "vector/selvector.h"
#include "vector/vector.h"

namespace ma {

class Batch {
 public:
  Batch() = default;

  /// Number of physical rows in each column vector.
  size_t row_count() const { return row_count_; }
  void set_row_count(size_t n) { row_count_ = n; }

  /// Number of live rows (selection size if one is active, else
  /// row_count).
  size_t live_count() const {
    return sel_active_ ? sel_->size() : row_count_;
  }

  /// Adds a column; returns its index.
  size_t AddColumn(std::string name, std::shared_ptr<Vector> vec);

  size_t num_columns() const { return columns_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  Vector& column(size_t i) { return *columns_[i]; }
  const Vector& column(size_t i) const { return *columns_[i]; }
  std::shared_ptr<Vector> column_ptr(size_t i) const { return columns_[i]; }

  /// Index of the column called `name`, or -1.
  int FindColumn(std::string_view name) const;

  /// Selection vector management. The batch owns one lazily-created
  /// SelVector; operators write into it via mutable_sel().
  bool has_sel() const { return sel_active_; }
  const SelVector& sel() const { return *sel_; }
  SelVector& mutable_sel();
  void set_sel_active(bool active) { sel_active_ = active; }

  /// Drops all columns and the selection, keeping buffers allocated.
  void Clear();

 private:
  size_t row_count_ = 0;
  std::vector<std::string> names_;
  std::vector<std::shared_ptr<Vector>> columns_;
  std::unique_ptr<SelVector> sel_;
  bool sel_active_ = false;
};

}  // namespace ma

#endif  // MA_VECTOR_BATCH_H_
