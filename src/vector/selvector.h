// SelVector: a selection vector — sorted positions of qualifying tuples
// within the current vector. Selection primitives produce these; most
// other primitives optionally consume one ("selective computation", see
// Figure 7 of the paper).
#ifndef MA_VECTOR_SELVECTOR_H_
#define MA_VECTOR_SELVECTOR_H_

#include <memory>

#include "common/status.h"
#include "common/types.h"

namespace ma {

class SelVector {
 public:
  explicit SelVector(size_t capacity = kDefaultVectorSize);

  SelVector(const SelVector&) = delete;
  SelVector& operator=(const SelVector&) = delete;
  SelVector(SelVector&&) = default;
  SelVector& operator=(SelVector&&) = default;

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  void set_size(size_t n) {
    MA_CHECK(n <= capacity_);
    size_ = n;
  }

  sel_t* data() { return data_.get(); }
  const sel_t* data() const { return data_.get(); }

  sel_t operator[](size_t i) const { return data_[i]; }

  /// Fills with the identity selection [0, n).
  void SetIdentity(size_t n);

  /// Copies positions from another selection vector.
  void CopyFrom(const SelVector& other);

  /// True if positions are strictly increasing (a kernel invariant).
  bool IsSorted() const;

 private:
  size_t capacity_;
  size_t size_ = 0;
  std::unique_ptr<sel_t[]> data_;
};

}  // namespace ma

#endif  // MA_VECTOR_SELVECTOR_H_
