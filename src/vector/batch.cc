#include "vector/batch.h"

namespace ma {

size_t Batch::AddColumn(std::string name, std::shared_ptr<Vector> vec) {
  names_.push_back(std::move(name));
  columns_.push_back(std::move(vec));
  return columns_.size() - 1;
}

int Batch::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

SelVector& Batch::mutable_sel() {
  if (!sel_) sel_ = std::make_unique<SelVector>(kMaxVectorSize);
  return *sel_;
}

void Batch::Clear() {
  names_.clear();
  columns_.clear();
  sel_active_ = false;
  row_count_ = 0;
}

}  // namespace ma
