#include "vector/selvector.h"

#include <cstring>

namespace ma {

SelVector::SelVector(size_t capacity)
    : capacity_(capacity), data_(std::make_unique<sel_t[]>(capacity)) {}

void SelVector::SetIdentity(size_t n) {
  MA_CHECK(n <= capacity_);
  for (size_t i = 0; i < n; ++i) data_[i] = static_cast<sel_t>(i);
  size_ = n;
}

void SelVector::CopyFrom(const SelVector& other) {
  MA_CHECK(other.size() <= capacity_);
  std::memcpy(data_.get(), other.data(), other.size() * sizeof(sel_t));
  size_ = other.size();
}

bool SelVector::IsSorted() const {
  for (size_t i = 1; i < size_; ++i) {
    if (data_[i - 1] >= data_[i]) return false;
  }
  return true;
}

}  // namespace ma
