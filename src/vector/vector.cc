#include "vector/vector.h"

namespace ma {

size_t TypeWidth(PhysicalType t) {
  switch (t) {
    case PhysicalType::kI8:
      return 1;
    case PhysicalType::kI16:
      return 2;
    case PhysicalType::kI32:
      return 4;
    case PhysicalType::kI64:
      return 8;
    case PhysicalType::kF64:
      return 8;
    case PhysicalType::kStr:
      return sizeof(StrRef);
  }
  return 0;
}

const char* TypeName(PhysicalType t) {
  switch (t) {
    case PhysicalType::kI8:
      return "i8";
    case PhysicalType::kI16:
      return "i16";
    case PhysicalType::kI32:
      return "i32";
    case PhysicalType::kI64:
      return "i64";
    case PhysicalType::kF64:
      return "f64";
    case PhysicalType::kStr:
      return "str";
  }
  return "?";
}

Vector::Vector(PhysicalType type, size_t capacity)
    : type_(type), capacity_(capacity) {
  const size_t bytes = capacity * TypeWidth(type);
  void* p = nullptr;
  // Round up to the alignment multiple as posix rules require.
  const size_t aligned = (bytes + 63) / 64 * 64;
  const int rc = posix_memalign(&p, 64, aligned == 0 ? 64 : aligned);
  MA_CHECK(rc == 0 && p != nullptr);
  data_ = std::unique_ptr<void, MaybeFreeDeleter>(p, MaybeFreeDeleter{true});
}

Vector::Vector(ViewTag, PhysicalType type, const void* data, size_t n)
    : type_(type), capacity_(n), size_(n) {
  data_ = std::unique_ptr<void, MaybeFreeDeleter>(const_cast<void*>(data),
                                                  MaybeFreeDeleter{false});
}

std::shared_ptr<Vector> Vector::View(PhysicalType type, const void* data,
                                     size_t n) {
  return std::shared_ptr<Vector>(new Vector(ViewTag{}, type, data, n));
}

void Vector::ResetView(const void* data, size_t n) {
  MA_CHECK(!data_.get_deleter().owned);
  data_.release();
  data_ = std::unique_ptr<void, MaybeFreeDeleter>(const_cast<void*>(data),
                                                  MaybeFreeDeleter{false});
  capacity_ = n;
  size_ = n;
}

}  // namespace ma
