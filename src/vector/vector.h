// Vector: a fixed-capacity, typed array of values — the unit of data flow
// in vectorized execution. Kernels ("primitives") read and write raw
// pointers obtained from vectors; operators own the vectors.
#ifndef MA_VECTOR_VECTOR_H_
#define MA_VECTOR_VECTOR_H_

#include <cstdlib>
#include <memory>

#include "common/status.h"
#include "common/types.h"

namespace ma {

class Vector {
 public:
  /// Creates a vector of `type` holding up to `capacity` values. Storage
  /// is 64-byte aligned so SIMD flavors never straddle cache lines at the
  /// buffer start.
  explicit Vector(PhysicalType type, size_t capacity = kDefaultVectorSize);

  /// Creates a non-owning view over `n` values at `data` (e.g. a slice of
  /// a storage column). The underlying memory must outlive the view;
  /// scans produce these so no copying happens between storage and
  /// primitives.
  static std::shared_ptr<Vector> View(PhysicalType type, const void* data,
                                      size_t n);

  /// Repoints a view at a different slice (views only; aborts on owning
  /// vectors). Lets scans reuse one Vector object per column for the
  /// whole table instead of allocating a fresh view every batch. Any
  /// reference retained across the producer's Next() observes the new
  /// slice — the usual vector-at-a-time lifetime contract.
  void ResetView(const void* data, size_t n);

  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  PhysicalType type() const { return type_; }
  size_t capacity() const { return capacity_; }

  /// Number of valid values. Operators set this after filling.
  size_t size() const { return size_; }
  void set_size(size_t n) {
    MA_CHECK(n <= capacity_);
    size_ = n;
  }

  void* raw_data() { return data_.get(); }
  const void* raw_data() const { return data_.get(); }

  /// Typed accessors; abort on a type mismatch (programming error).
  template <typename T>
  T* Data() {
    MA_CHECK(TypeTag<T>::value == type_);
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  const T* Data() const {
    MA_CHECK(TypeTag<T>::value == type_);
    return reinterpret_cast<const T*>(data_.get());
  }

  /// Typed element access for tests and row-at-a-time consumers.
  template <typename T>
  T Get(size_t i) const {
    MA_CHECK(i < size_);
    return Data<T>()[i];
  }
  template <typename T>
  void Set(size_t i, T v) {
    MA_CHECK(i < capacity_);
    Data<T>()[i] = v;
  }

 private:
  struct MaybeFreeDeleter {
    // Note: user-provided constructors (not default member initializers)
    // so unique_ptr's default-constructibility check, which runs before
    // the enclosing class is complete, sees a usable default ctor.
    MaybeFreeDeleter() : owned(true) {}
    explicit MaybeFreeDeleter(bool o) : owned(o) {}
    void operator()(void* p) const {
      if (owned) std::free(p);
    }
    bool owned;
  };

  struct ViewTag {};
  Vector(ViewTag, PhysicalType type, const void* data, size_t n);

  PhysicalType type_;
  size_t capacity_;
  size_t size_ = 0;
  std::unique_ptr<void, MaybeFreeDeleter> data_;
};

}  // namespace ma

#endif  // MA_VECTOR_VECTOR_H_
