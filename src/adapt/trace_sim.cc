#include "adapt/trace_sim.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace ma {

u64 InstanceTrace::OptCycles() const {
  u64 total = 0;
  for (size_t t = 0; t < num_calls(); ++t) {
    u64 best = cost[0][t];
    for (size_t f = 1; f < cost.size(); ++f) {
      best = std::min(best, cost[f][t]);
    }
    total += best;
  }
  return total;
}

u64 InstanceTrace::FlavorCycles(size_t f) const {
  u64 total = 0;
  for (u64 c : cost[f]) total += c;
  return total;
}

u64 TraceSimulator::Replay(const InstanceTrace& trace,
                           BanditPolicy* policy) {
  MA_CHECK(policy->num_flavors() ==
           static_cast<int>(trace.num_flavors()));
  u64 total = 0;
  for (size_t t = 0; t < trace.num_calls(); ++t) {
    const int f = policy->Choose();
    const u64 c = trace.cost[f][t];
    total += c;
    policy->Update(trace.tuples[t], c);
  }
  return total;
}

TraceScore TraceSimulator::Evaluate(PolicyKind kind,
                                    const PolicyParams& params) const {
  MA_CHECK(!traces_.empty());
  u64 sum_alg = 0, sum_opt = 0;
  f64 rel_sum = 0;
  for (const InstanceTrace& trace : traces_) {
    auto policy =
        MakePolicy(kind, static_cast<int>(trace.num_flavors()), params);
    const u64 alg = Replay(trace, policy.get());
    const u64 opt = trace.OptCycles();
    sum_alg += alg;
    sum_opt += opt;
    rel_sum += opt == 0 ? 1.0
                        : static_cast<f64>(alg) / static_cast<f64>(opt);
  }
  TraceScore score;
  score.absolute_opt =
      sum_opt == 0 ? 1.0
                   : static_cast<f64>(sum_alg) / static_cast<f64>(sum_opt);
  score.relative_opt = rel_sum / static_cast<f64>(traces_.size());
  return score;
}

std::vector<InstanceTrace> MakeSyntheticTraces(
    const SyntheticTraceOptions& options) {
  Rng rng(options.seed);
  std::vector<InstanceTrace> traces;
  traces.reserve(options.num_instances);
  for (int inst = 0; inst < options.num_instances; ++inst) {
    InstanceTrace tr;
    tr.label = "instance_" + std::to_string(inst);
    const u64 calls =
        options.min_calls +
        rng.NextBounded(options.max_calls - options.min_calls + 1);
    tr.tuples.resize(calls);
    for (auto& t : tr.tuples) t = 900 + rng.NextBounded(225);  // ~1K

    // Base cost level of this primitive (cycles/tuple), like the 1-20
    // cycles/tuple range seen across TPC-H primitives.
    const f64 base = 1.5 + rng.NextDouble() * 15.0;

    // Per-flavor multipliers; compilers differ by up to ~30-90%.
    std::vector<f64> mult(options.num_flavors);
    for (auto& m : mult) m = 1.0 + rng.NextDouble() * 0.5;

    // Optional phase change: at a random point, flavor multipliers are
    // re-drawn — possibly changing which flavor is best (cross-over).
    const bool phased = rng.NextBool(options.phase_change_prob);
    const u64 phase_at = phased ? calls / 4 + rng.NextBounded(calls / 2) : calls;
    std::vector<f64> mult2(options.num_flavors);
    for (auto& m : mult2) m = 1.0 + rng.NextDouble() * 0.5;

    tr.cost.assign(options.num_flavors, std::vector<u64>(calls));
    for (u64 t = 0; t < calls; ++t) {
      const std::vector<f64>& m = (t < phase_at) ? mult : mult2;
      for (int f = 0; f < options.num_flavors; ++f) {
        const f64 noise =
            1.0 + (rng.NextDouble() * 2.0 - 1.0) * options.noise;
        const f64 cpt = base * m[f] * noise;
        tr.cost[f][t] =
            static_cast<u64>(std::max(1.0, cpt * tr.tuples[t]));
      }
    }
    traces.push_back(std::move(tr));
  }
  return traces;
}

}  // namespace ma
