// Multi-armed-bandit flavor-selection policies (paper §3.2). A policy
// sees a stream of (flavor used, tuples, cycles) feedback and decides
// which flavor the next primitive call should use. All policies treat
// lower cycles/tuple as higher reward.
#ifndef MA_ADAPT_BANDIT_H_
#define MA_ADAPT_BANDIT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ma {

/// Which policy the engine uses to pick flavors.
enum class PolicyKind : u8 {
  kFixed,          // always the default flavor (adaptivity off)
  kVwGreedy,       // the paper's contribution (Listing 8 + initial sweep)
  kEpsGreedy,      // classic epsilon-greedy on lifetime means
  kEpsFirst,       // explore an initial fraction, then commit
  kEpsDecreasing,  // epsilon ~ c/t
  kRoundRobin,     // cycles through flavors (diagnostic baseline)
};

const char* PolicyKindName(PolicyKind k);

/// Tuning parameters. Defaults follow the winning configuration of the
/// paper's trace simulation, vw-greedy(1024, 8, 2) (Table 5).
struct PolicyParams {
  // vw-greedy: all powers of two; EXPLORE_PERIOD > EXPLOIT_PERIOD, both
  // multiples of EXPLORE_LENGTH.
  u64 explore_period = 1024;
  u64 exploit_period = 8;
  u64 explore_length = 2;
  /// Ignore the first N calls of each phase when averaging, to avoid
  /// measuring instruction-cache misses (the paper uses 2).
  u64 warmup_calls = 2;
  /// Run the initial sweep that tests every flavor once at query start
  /// (the ε-first-inspired extension the paper added after Table 5).
  bool initial_sweep = true;

  // epsilon family.
  f64 eps = 0.05;
  /// eps-first explores for eps * horizon calls.
  u64 horizon = 16384;

  u64 seed = 42;
};

class BanditPolicy {
 public:
  virtual ~BanditPolicy() = default;

  /// Flavor to use for the next call.
  virtual int Choose() = 0;

  /// Feedback for the call just made with the flavor returned by the
  /// last Choose().
  virtual void Update(u64 tuples, u64 cycles) = 0;

  /// True when the policy is exploiting a settled choice AND its next
  /// Choose() would return `flavor` — i.e. repeating `flavor` without
  /// timing it or feeding back an observation cannot disturb learning.
  /// Chunked dispatch (AdaptiveConfig::chunk_max) consults this after
  /// every decision call with the flavor that call ran; the flavor
  /// argument matters because Update() may have just rotated the policy
  /// into a new phase (e.g. vw-greedy finishing an exploration), in
  /// which case replaying the *previous* call's flavor would be wrong.
  /// Policies that need every call observed (round-robin, active
  /// exploration phases) return false.
  virtual bool ExploitationStable(int /*flavor*/) const { return false; }

  /// Installs prior cost estimates (cycles/tuple, +inf = unknown; index
  /// = flavor) learned from earlier queries at the same plan site, so
  /// the policy can skip its cold-start exploration. Priors are REWARD
  /// state only: every flavor is bit-exact by the flavor contract, so
  /// seeding shifts which flavor runs, never what it computes. Called
  /// at most once, right after construction/Reset and before the first
  /// Choose(); stale priors must remain correctable by the policy's
  /// normal exploration. Default: ignore (policies without a cost
  /// model, e.g. round-robin).
  virtual void SeedPriors(const std::vector<f64>& /*cost_per_tuple*/) {}

  virtual void Reset() = 0;
  virtual std::string name() const = 0;
  int num_flavors() const { return num_flavors_; }

 protected:
  explicit BanditPolicy(int num_flavors) : num_flavors_(num_flavors) {}
  int num_flavors_;
};

/// Factory. `num_flavors` >= 1; kFixed ignores params.
std::unique_ptr<BanditPolicy> MakePolicy(PolicyKind kind, int num_flavors,
                                         const PolicyParams& params);

// -----------------------------------------------------------------------
// Concrete policies (exposed for tests and the trace simulator).
// -----------------------------------------------------------------------

class FixedPolicy : public BanditPolicy {
 public:
  explicit FixedPolicy(int num_flavors, int index = 0)
      : BanditPolicy(num_flavors), index_(index) {}
  int Choose() override { return index_; }
  void Update(u64, u64) override {}
  bool ExploitationStable(int flavor) const override {
    return flavor == index_;
  }
  void Reset() override {}
  std::string name() const override { return "fixed"; }

 private:
  int index_;
};

class RoundRobinPolicy : public BanditPolicy {
 public:
  explicit RoundRobinPolicy(int num_flavors) : BanditPolicy(num_flavors) {}
  int Choose() override { return static_cast<int>(n_++ % num_flavors_); }
  void Update(u64, u64) override {}
  void Reset() override { n_ = 0; }
  std::string name() const override { return "round-robin"; }

 private:
  u64 n_ = 0;
};

/// The paper's vw-greedy (Listing 8): deterministic alternation of
/// exploration and exploitation phases, per-phase windowed cost averages
/// (non-stationarity resistance), first `warmup_calls` calls of each
/// phase excluded from the average, plus the initial all-flavors sweep.
class VwGreedyPolicy : public BanditPolicy {
 public:
  VwGreedyPolicy(int num_flavors, const PolicyParams& params);

  int Choose() override { return flavor_; }
  void Update(u64 tuples, u64 cycles) override;
  bool ExploitationStable(int flavor) const override {
    return !exploring_ && flavor == flavor_;
  }
  /// Seeds avg_cost_ and jumps straight to exploiting the best prior —
  /// the initial sweep is skipped; the periodic exploration cadence is
  /// untouched, so stale priors are corrected like any stale window.
  void SeedPriors(const std::vector<f64>& cost_per_tuple) override;
  void Reset() override;
  std::string name() const override;

  /// Cost estimate (cycles/tuple) the policy currently holds per flavor;
  /// +inf when never measured. Exposed for tests/diagnostics.
  const std::vector<f64>& flavor_costs() const { return avg_cost_; }
  bool in_exploration() const { return exploring_; }

 private:
  void StartPhase(int flavor, u64 length, bool exploring);
  int BestFlavor() const;

  PolicyParams p_;
  Rng rng_;

  // Mirrors the state of Listing 8.
  u64 calls_ = 0;
  u64 tot_cycles_ = 0;
  u64 tot_tuples_ = 0;
  u64 prev_cycles_ = 0;
  u64 prev_tuples_ = 0;
  u64 calc_start_ = 0;
  u64 calc_end_ = 0;
  u64 next_explore_ = 0;
  int flavor_ = 0;
  bool exploring_ = false;
  int sweep_next_ = 0;  // next flavor of the initial sweep; -1 when done

  std::vector<f64> avg_cost_;
};

/// Classic epsilon strategies over lifetime per-flavor means.
class EpsPolicy : public BanditPolicy {
 public:
  enum class Variant { kGreedy, kFirst, kDecreasing };

  EpsPolicy(Variant variant, int num_flavors, const PolicyParams& params);

  int Choose() override;
  void Update(u64 tuples, u64 cycles) override;
  bool ExploitationStable(int flavor) const override {
    return last_was_greedy_ && flavor == last_;
  }
  /// Folds each prior in as one synthetic observation, so the lifetime
  /// means start defined and the forced first-pull phase is skipped.
  void SeedPriors(const std::vector<f64>& cost_per_tuple) override;
  void Reset() override;
  std::string name() const override;

 private:
  int BestFlavor() const;

  Variant variant_;
  PolicyParams p_;
  Rng rng_;
  u64 t_ = 0;
  int last_ = 0;
  bool last_was_greedy_ = false;
  std::vector<u64> cycles_;
  std::vector<u64> tuples_;
  std::vector<u64> pulls_;
};

}  // namespace ma

#endif  // MA_ADAPT_BANDIT_H_
