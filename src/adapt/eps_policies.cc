#include <algorithm>
#include <cmath>
#include <limits>

#include "adapt/bandit.h"
#include "common/status.h"

namespace ma {

EpsPolicy::EpsPolicy(Variant variant, int num_flavors,
                     const PolicyParams& params)
    : BanditPolicy(num_flavors),
      variant_(variant),
      p_(params),
      rng_(params.seed) {
  MA_CHECK(num_flavors >= 1);
  Reset();
}

void EpsPolicy::Reset() {
  t_ = 0;
  last_ = 0;
  last_was_greedy_ = false;
  cycles_.assign(num_flavors_, 0);
  tuples_.assign(num_flavors_, 0);
  pulls_.assign(num_flavors_, 0);
}

int EpsPolicy::BestFlavor() const {
  int best = -1;
  f64 best_cost = std::numeric_limits<f64>::infinity();
  for (int f = 0; f < num_flavors_; ++f) {
    // Never-tried flavors are preferred over any measured one so the
    // lifetime means become defined quickly.
    if (pulls_[f] == 0) return f;
    const f64 cost =
        tuples_[f] == 0 ? std::numeric_limits<f64>::infinity()
                        : static_cast<f64>(cycles_[f]) / tuples_[f];
    if (cost < best_cost) {
      best_cost = cost;
      best = f;
    }
  }
  return best < 0 ? 0 : best;
}

int EpsPolicy::Choose() {
  ++t_;
  bool explore = false;
  switch (variant_) {
    case Variant::kGreedy:
      explore = rng_.NextBool(p_.eps);
      break;
    case Variant::kFirst:
      explore = t_ <= static_cast<u64>(p_.eps * p_.horizon);
      break;
    case Variant::kDecreasing: {
      const f64 eps_t = p_.eps < 0 ? 0 : p_.eps / static_cast<f64>(t_);
      explore = rng_.NextBool(eps_t < 1.0 ? eps_t : 1.0);
      break;
    }
  }
  last_was_greedy_ = !explore;
  last_ = explore ? static_cast<int>(rng_.NextBounded(num_flavors_))
                  : BestFlavor();
  return last_;
}

void EpsPolicy::Update(u64 tuples, u64 cycles) {
  cycles_[last_] += cycles;
  tuples_[last_] += tuples;
  pulls_[last_] += 1;
}

void EpsPolicy::SeedPriors(const std::vector<f64>& cost_per_tuple) {
  // Lifetime-mean policies take each prior as ONE synthetic pull of
  // kPriorTuples tuples: enough to define the flavor's mean (so
  // BestFlavor stops forcing untried flavors), light enough that real
  // measurements dominate it within a handful of calls.
  constexpr u64 kPriorTuples = 1024;
  const int n = std::min(num_flavors_,
                         static_cast<int>(cost_per_tuple.size()));
  for (int f = 0; f < n; ++f) {
    const f64 c = cost_per_tuple[f];
    if (!std::isfinite(c) || c <= 0) continue;
    pulls_[f] += 1;
    tuples_[f] += kPriorTuples;
    cycles_[f] += static_cast<u64>(c * static_cast<f64>(kPriorTuples));
  }
}

std::string EpsPolicy::name() const {
  switch (variant_) {
    case Variant::kGreedy:
      return "eps-greedy(" + std::to_string(p_.eps) + ")";
    case Variant::kFirst:
      return "eps-first(" + std::to_string(p_.eps) + ")";
    case Variant::kDecreasing:
      return "eps-decreasing(" + std::to_string(p_.eps) + ")";
  }
  return "eps";
}

}  // namespace ma
