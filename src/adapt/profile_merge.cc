#include "adapt/profile_merge.h"

#include <unordered_map>

namespace ma {

namespace {

const std::string kNoFlavor;

/// Index of `name` in `flavors`, appending a new row if absent.
size_t FlavorRow(std::vector<FlavorUsageProfile>* flavors,
                 const std::string& name) {
  for (size_t i = 0; i < flavors->size(); ++i) {
    if ((*flavors)[i].flavor == name) return i;
  }
  flavors->push_back(FlavorUsageProfile{.flavor = name});
  return flavors->size() - 1;
}

}  // namespace

const std::string& InstanceProfile::MostUsedFlavor() const {
  const FlavorUsageProfile* best = nullptr;
  for (const FlavorUsageProfile& f : flavors) {
    if (best == nullptr || f.calls > best->calls) best = &f;
  }
  return best != nullptr && best->calls > 0 ? best->flavor : kNoFlavor;
}

std::vector<InstanceProfile> MergeInstanceProfiles(
    const std::vector<const PrimitiveInstance*>& instances) {
  std::vector<InstanceProfile> merged;
  std::unordered_map<std::string, size_t> by_label;
  for (const PrimitiveInstance* inst : instances) {
    if (inst == nullptr) continue;
    auto [it, fresh] = by_label.try_emplace(inst->label(), merged.size());
    if (fresh) {
      merged.emplace_back();
      merged.back().label = inst->label();
      merged.back().signature = inst->entry()->signature;
    }
    InstanceProfile& row = merged[it->second];
    row.instances += 1;
    row.calls += inst->calls();
    row.tuples += inst->tuples();
    row.cycles += inst->cycles();
    const PrimitiveInstance::FlavorUsage* best_usage = nullptr;
    const std::string* best_name = &kNoFlavor;
    for (int f = 0; f < inst->num_flavors(); ++f) {
      const PrimitiveInstance::FlavorUsage& u = inst->usage()[f];
      if (u.calls == 0 && u.tuples == 0 && u.cycles == 0) continue;
      const std::string& name = inst->flavors()[f]->name;
      FlavorUsageProfile& agg = row.flavors[FlavorRow(&row.flavors, name)];
      agg.calls += u.calls;
      agg.tuples += u.tuples;
      agg.cycles += u.cycles;
      agg.timed_tuples += u.timed_tuples;
      if (best_usage == nullptr || u.calls > best_usage->calls) {
        best_usage = &u;
        best_name = &name;
      }
    }
    row.winner_per_thread.push_back(*best_name);
  }
  return merged;
}

}  // namespace ma
