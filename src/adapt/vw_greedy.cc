#include <algorithm>
#include <cmath>
#include <limits>

#include "adapt/bandit.h"
#include "common/status.h"

namespace ma {

VwGreedyPolicy::VwGreedyPolicy(int num_flavors, const PolicyParams& params)
    : BanditPolicy(num_flavors), p_(params), rng_(params.seed) {
  MA_CHECK(num_flavors >= 1);
  MA_CHECK(p_.explore_period >= p_.exploit_period);
  MA_CHECK(p_.explore_length >= 1);
  Reset();
}

void VwGreedyPolicy::Reset() {
  calls_ = 0;
  tot_cycles_ = tot_tuples_ = 0;
  prev_cycles_ = prev_tuples_ = 0;
  avg_cost_.assign(num_flavors_, std::numeric_limits<f64>::infinity());
  next_explore_ = p_.explore_period;
  sweep_next_ = (p_.initial_sweep && num_flavors_ > 1) ? 0 : -1;
  if (sweep_next_ >= 0) {
    // Initial sweep: test every flavor for explore_length calls each,
    // starting with flavor 0.
    StartPhase(sweep_next_, p_.explore_length, /*exploring=*/true);
    sweep_next_ = 1 % num_flavors_;
    if (sweep_next_ == 0) sweep_next_ = -1;
  } else {
    StartPhase(0, p_.exploit_period, /*exploring=*/false);
  }
}

void VwGreedyPolicy::StartPhase(int flavor, u64 length, bool exploring) {
  flavor_ = flavor;
  exploring_ = exploring;
  // First `warmup_calls` of the phase are excluded from the average to
  // avoid measuring instruction-cache misses (Listing 8's "+ 2").
  calc_start_ = calls_ + p_.warmup_calls;
  calc_end_ = calc_start_ + length;
}

int VwGreedyPolicy::BestFlavor() const {
  int best = 0;
  f64 best_cost = avg_cost_[0];
  for (int f = 1; f < num_flavors_; ++f) {
    if (avg_cost_[f] < best_cost) {
      best_cost = avg_cost_[f];
      best = f;
    }
  }
  // If nothing is measured yet (all infinite), flavor 0 wins — matches
  // starting with the default flavor.
  return best;
}

void VwGreedyPolicy::Update(u64 tuples, u64 cycles) {
  tot_cycles_ += cycles;
  tot_tuples_ += tuples;
  ++calls_;

  if (calls_ == calc_start_) {
    prev_cycles_ = tot_cycles_;
    prev_tuples_ = tot_tuples_;
    return;
  }
  if (calls_ != calc_end_) return;

  // Phase finished: refresh this flavor's cost from the phase window
  // only — recent information, not a lifetime mean, so sudden context
  // changes show up immediately (non-stationarity resistance).
  const u64 dt = tot_tuples_ - prev_tuples_;
  if (dt > 0) {
    avg_cost_[flavor_] =
        static_cast<f64>(tot_cycles_ - prev_cycles_) / static_cast<f64>(dt);
  }

  if (sweep_next_ >= 0) {
    // Continue the initial sweep through all flavors.
    const int f = sweep_next_;
    sweep_next_ = (sweep_next_ + 1) % num_flavors_;
    if (sweep_next_ == 0) sweep_next_ = -1;
    StartPhase(f, p_.explore_length, /*exploring=*/true);
    return;
  }

  if (calls_ >= next_explore_) {
    // Exploration: a uniformly random flavor for explore_length calls,
    // ignoring all knowledge so far.
    next_explore_ += p_.explore_period;
    const int f = static_cast<int>(rng_.NextBounded(num_flavors_));
    StartPhase(f, p_.explore_length, /*exploring=*/true);
  } else {
    // Exploitation: the best-known flavor for exploit_period calls.
    StartPhase(BestFlavor(), p_.exploit_period, /*exploring=*/false);
  }
}

void VwGreedyPolicy::SeedPriors(const std::vector<f64>& cost_per_tuple) {
  bool any = false;
  const int n = std::min(num_flavors_,
                         static_cast<int>(cost_per_tuple.size()));
  for (int f = 0; f < n; ++f) {
    const f64 c = cost_per_tuple[f];
    if (std::isfinite(c) && c > 0) {
      avg_cost_[f] = c;
      any = true;
    }
  }
  if (!any) return;
  // Warm start: skip the remaining initial sweep and exploit the best
  // prior immediately. next_explore_ is untouched, so the periodic
  // exploration phases still fire on schedule — a stale prior gets
  // overwritten by a fresh phase window exactly like any old
  // measurement would (non-stationarity resistance is preserved).
  sweep_next_ = -1;
  StartPhase(BestFlavor(), p_.exploit_period, /*exploring=*/false);
}

std::string VwGreedyPolicy::name() const {
  return "vw-greedy(" + std::to_string(p_.explore_period) + "," +
         std::to_string(p_.exploit_period) + "," +
         std::to_string(p_.explore_length) + ")";
}

}  // namespace ma
