// Approximated Performance History (paper §1.1). Vectorwise profiles
// every primitive call; storing 100K+ measurements per primitive instance
// is too heavy, so the APH keeps at most `max_buckets` buckets (512 in
// the paper). When full, neighboring buckets merge pairwise down to half,
// doubling the number of calls each bucket represents: after k merge
// rounds every full bucket covers 2^k consecutive calls.
#ifndef MA_ADAPT_APH_H_
#define MA_ADAPT_APH_H_

#include <vector>

#include "common/types.h"

namespace ma {

class Aph {
 public:
  struct Bucket {
    u64 calls = 0;
    u64 tuples = 0;
    u64 cycles = 0;

    /// Average cost in cycles/tuple of the calls in this bucket.
    f64 CostPerTuple() const {
      return tuples == 0 ? 0.0 : static_cast<f64>(cycles) / tuples;
    }
  };

  explicit Aph(size_t max_buckets = 512);

  /// Records one primitive call.
  void Add(u64 tuples, u64 cycles);

  size_t max_buckets() const { return max_buckets_; }
  /// Number of calls each *full* bucket currently represents (2^k).
  u64 calls_per_bucket() const { return calls_per_bucket_; }

  const std::vector<Bucket>& buckets() const { return buckets_; }
  u64 total_calls() const { return total_calls_; }
  u64 total_tuples() const { return total_tuples_; }
  u64 total_cycles() const { return total_cycles_; }

  /// Overall average cycles/tuple.
  f64 MeanCostPerTuple() const {
    return total_tuples_ == 0
               ? 0.0
               : static_cast<f64>(total_cycles_) / total_tuples_;
  }

  void Reset();

  /// Pointwise minimum cost across several aligned histories: the paper's
  /// approximated OPT for Tables 6-10 takes, for each APH bucket, the
  /// minimum time among all flavors. Histories must stem from runs with
  /// the same call sequence; buckets are aligned by call index. Returns
  /// total OPT cycles.
  static u64 OptCycles(const std::vector<const Aph*>& flavors);

 private:
  void MergePairs();

  size_t max_buckets_;
  u64 calls_per_bucket_ = 1;
  std::vector<Bucket> buckets_;
  u64 total_calls_ = 0;
  u64 total_tuples_ = 0;
  u64 total_cycles_ = 0;
};

}  // namespace ma

#endif  // MA_ADAPT_APH_H_
