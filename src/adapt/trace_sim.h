// Trace-driven bandit simulation (paper §3.2 "Simulations on traces",
// Table 5). A trace records, for every call of a primitive instance, the
// cost each flavor *would* have had (the paper gathered these by running
// the TPC-H workload once per flavor). Replaying traces lets us score
// selection policies against OPT — the clairvoyant strategy that picks
// the cheapest flavor at every call — without timing noise.
#ifndef MA_ADAPT_TRACE_SIM_H_
#define MA_ADAPT_TRACE_SIM_H_

#include <string>
#include <vector>

#include "adapt/bandit.h"

namespace ma {

/// Per-primitive-instance cost trace.
struct InstanceTrace {
  std::string label;
  /// tuples[t] = tuples processed by call t.
  std::vector<u64> tuples;
  /// cost[f][t] = cycles flavor f would spend on call t.
  std::vector<std::vector<u64>> cost;

  size_t num_calls() const { return tuples.size(); }
  size_t num_flavors() const { return cost.size(); }

  /// Total cycles of the clairvoyant per-call-minimum strategy.
  u64 OptCycles() const;
  /// Total cycles when always using flavor f.
  u64 FlavorCycles(size_t f) const;
};

/// Scores, as factors of OPT (>= 1, lower is better; Table 5).
struct TraceScore {
  f64 absolute_opt = 0;  // sum(alg) / sum(opt) over the whole workload
  f64 relative_opt = 0;  // mean over instances of alg_i / opt_i
  f64 average() const { return (absolute_opt + relative_opt) / 2; }
};

class TraceSimulator {
 public:
  void AddTrace(InstanceTrace trace) {
    traces_.push_back(std::move(trace));
  }
  const std::vector<InstanceTrace>& traces() const { return traces_; }

  /// Replays every trace under a fresh policy of the given kind/params
  /// and scores the result against OPT.
  TraceScore Evaluate(PolicyKind kind, const PolicyParams& params) const;

  /// Replays one trace, returning the cycles the policy accrues.
  static u64 Replay(const InstanceTrace& trace, BanditPolicy* policy);

 private:
  std::vector<InstanceTrace> traces_;
};

/// Options for the synthetic TPC-H-profile-like trace workload used by
/// the Table 5 reproduction: 300+ primitive instances, 16K..32K calls,
/// 3 flavors with machine-like cost levels, phase shifts and noise.
struct SyntheticTraceOptions {
  u64 seed = 7;
  int num_instances = 300;
  int num_flavors = 3;
  u64 min_calls = 16 * 1024;
  u64 max_calls = 32 * 1024;
  /// Probability an instance has a mid-query phase change (cost levels
  /// shift, possibly crossing over) — compiler flavors "less often lead
  /// to cross-over points", so keep this modest by default.
  f64 phase_change_prob = 0.25;
  /// Multiplicative per-call noise (lognormal-ish), e.g. 0.05 = ~5%.
  f64 noise = 0.05;
};

std::vector<InstanceTrace> MakeSyntheticTraces(
    const SyntheticTraceOptions& options);

}  // namespace ma

#endif  // MA_ADAPT_TRACE_SIM_H_
