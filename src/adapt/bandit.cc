#include "adapt/bandit.h"

#include "common/status.h"

namespace ma {

const char* PolicyKindName(PolicyKind k) {
  switch (k) {
    case PolicyKind::kFixed:
      return "fixed";
    case PolicyKind::kVwGreedy:
      return "vw-greedy";
    case PolicyKind::kEpsGreedy:
      return "eps-greedy";
    case PolicyKind::kEpsFirst:
      return "eps-first";
    case PolicyKind::kEpsDecreasing:
      return "eps-decreasing";
    case PolicyKind::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

std::unique_ptr<BanditPolicy> MakePolicy(PolicyKind kind, int num_flavors,
                                         const PolicyParams& params) {
  MA_CHECK(num_flavors >= 1);
  switch (kind) {
    case PolicyKind::kFixed:
      return std::make_unique<FixedPolicy>(num_flavors);
    case PolicyKind::kVwGreedy:
      return std::make_unique<VwGreedyPolicy>(num_flavors, params);
    case PolicyKind::kEpsGreedy:
      return std::make_unique<EpsPolicy>(EpsPolicy::Variant::kGreedy,
                                         num_flavors, params);
    case PolicyKind::kEpsFirst:
      return std::make_unique<EpsPolicy>(EpsPolicy::Variant::kFirst,
                                         num_flavors, params);
    case PolicyKind::kEpsDecreasing:
      return std::make_unique<EpsPolicy>(EpsPolicy::Variant::kDecreasing,
                                         num_flavors, params);
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>(num_flavors);
  }
  return nullptr;
}

}  // namespace ma
