// Merging thread-local primitive-instance profiles into one per-query
// report. Under morsel-driven parallelism every worker owns its own
// PrimitiveInstance for the same plan site (same label), each with an
// independent bandit — the paper's thread-local profiling by design.
// Nothing is shared during execution; at pipeline end the executor
// hands all instances here and gets back one aggregated profile per
// label, with per-flavor usage summed across threads.
//
// The per-thread winners are deliberately preserved too (winner_per
// thread): under asymmetric load different threads may legitimately
// converge to different flavors, and that divergence is an experiment
// output, not noise to be averaged away.
#ifndef MA_ADAPT_PROFILE_MERGE_H_
#define MA_ADAPT_PROFILE_MERGE_H_

#include <string>
#include <vector>

#include "adapt/primitive_instance.h"

namespace ma {

struct FlavorUsageProfile {
  std::string flavor;
  u64 calls = 0;
  u64 tuples = 0;
  u64 cycles = 0;
  /// Tuples of timed calls only; cycles/timed_tuples is the unbiased
  /// per-flavor cost (see PrimitiveInstance::FlavorUsage).
  u64 timed_tuples = 0;
};

struct InstanceProfile {
  std::string label;
  std::string signature;
  /// How many per-thread instances were merged into this row.
  int instances = 0;
  u64 calls = 0;
  u64 tuples = 0;
  u64 cycles = 0;
  /// Usage aggregated by flavor name across all merged instances.
  std::vector<FlavorUsageProfile> flavors;
  /// Most-used flavor (by calls) of each merged instance, in merge
  /// order — the per-thread winners.
  std::vector<std::string> winner_per_thread;

  /// Aggregate most-used flavor by calls ("" when never called).
  const std::string& MostUsedFlavor() const;
};

/// Aggregates instances by label (same label = same plan site across
/// worker threads). Input order defines row order (first appearance)
/// and the order of winner_per_thread entries.
std::vector<InstanceProfile> MergeInstanceProfiles(
    const std::vector<const PrimitiveInstance*>& instances);

}  // namespace ma

#endif  // MA_ADAPT_PROFILE_MERGE_H_
