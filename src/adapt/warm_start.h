// Warm-start priors: learned per-flavor cost estimates handed to fresh
// PrimitiveInstances so their bandits skip the cold-start sweep. The
// knowledge layer (src/knowledge/profile_store.h) distills these from
// merged profiles of earlier queries; this header lives in adapt/ so
// the execution layer can consume priors without depending on the
// knowledge store itself.
//
// Contract (docs/ADAPTIVITY.md): priors are REWARD state, never result
// state. Every flavor of a primitive is bit-exact by the flavor
// contract, so seeding can only change WHICH flavor runs — never what
// any query computes. Warm and cold runs are byte-identical.
#ifndef MA_ADAPT_WARM_START_H_
#define MA_ADAPT_WARM_START_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ma {

/// One flavor's learned cost at one plan site, distilled from the
/// timed calls of earlier queries.
struct FlavorPrior {
  std::string flavor;
  /// Mean cycles/tuple over timed calls only (chunked exploitation
  /// calls carry no timing and are excluded, so the mean is unbiased).
  f64 cost_per_tuple = 0;
};

/// An immutable map of priors keyed by (instance label, primitive
/// signature). Built once per snapshot by the ProfileStore, then shared
/// read-only across engines and worker threads (EngineConfig holds a
/// shared_ptr<const WarmStartSnapshot>), so lookups need no locking.
///
/// The instance label is the plan-site identity ("q1/select"): the same
/// site sees the same data stream across runs of the same plan, which
/// is what makes its history a valid prior — the paper's per-instance
/// learning, amortized across queries.
class WarmStartSnapshot {
 public:
  static std::string Key(std::string_view label, std::string_view signature);

  void Add(std::string_view label, std::string_view signature,
           std::vector<FlavorPrior> priors);

  /// Priors for the (label, signature) site, or null when this site was
  /// never profiled. The returned pointer lives as long as the snapshot.
  const std::vector<FlavorPrior>* Find(std::string_view label,
                                       std::string_view signature) const;

  size_t size() const { return priors_.size(); }
  bool empty() const { return priors_.empty(); }

 private:
  std::unordered_map<std::string, std::vector<FlavorPrior>> priors_;
};

}  // namespace ma

#endif  // MA_ADAPT_WARM_START_H_
