#include "adapt/strategy.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace ma {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kThreadCount:
      return "threads";
    case StrategyKind::kBloom:
      return "bloom";
    case StrategyKind::kMorselSize:
      return "morsel";
  }
  return "?";
}

StrategyInstance::StrategyInstance(StrategyKind kind,
                                   std::vector<StrategyArm> arms,
                                   StrategyParams params)
    : kind_(kind), arms_(std::move(arms)), params_(params) {
  MA_CHECK(!arms_.empty());
  if (params_.explore_every == 0) params_.explore_every = 16;
  base_.resize(arms_.size());
  live_.resize(arms_.size());
}

u64 StrategyInstance::TotalDecisions(size_t i) const {
  return base_[i].decisions + live_[i].decisions;
}

f64 StrategyInstance::CostOf(size_t i) const {
  const u64 tuples = base_[i].tuples + live_[i].tuples;
  const u64 cycles = base_[i].cycles + live_[i].cycles;
  if (tuples == 0) return std::numeric_limits<f64>::infinity();
  return static_cast<f64>(cycles) / static_cast<f64>(tuples);
}

int StrategyInstance::Decide() {
  int pick = -1;
  // Sweep: any arm never chosen (seeded counts as chosen) goes first.
  for (size_t i = 0; i < arms_.size(); ++i) {
    if (TotalDecisions(i) == 0) {
      pick = static_cast<int>(i);
      break;
    }
  }
  if (pick < 0 &&
      decide_count_ % params_.explore_every == params_.explore_every - 1) {
    // Periodic re-exploration: the least-chosen arm gets a fresh look.
    size_t best = 0;
    for (size_t i = 1; i < arms_.size(); ++i) {
      if (TotalDecisions(i) < TotalDecisions(best)) best = i;
    }
    pick = static_cast<int>(best);
  }
  if (pick < 0) {
    // Exploit: lowest measured cycles/tuple; unmeasured arms are
    // infinitely expensive, ties resolve to the lowest index.
    size_t best = 0;
    for (size_t i = 1; i < arms_.size(); ++i) {
      if (CostOf(i) < CostOf(best)) best = i;
    }
    pick = static_cast<int>(best);
  }
  live_[static_cast<size_t>(pick)].decisions += 1;
  ++decide_count_;
  if (last_arm_ >= 0 && pick != last_arm_) ++switches_;
  last_arm_ = pick;
  return pick;
}

void StrategyInstance::Reward(int arm, u64 tuples, u64 cycles) {
  if (arm < 0 || static_cast<size_t>(arm) >= arms_.size()) return;
  live_[static_cast<size_t>(arm)].tuples += tuples;
  live_[static_cast<size_t>(arm)].cycles += cycles;
}

void StrategyInstance::Seed(const StrategyProfile& prior) {
  for (const StrategyProfile::Arm& pa : prior.arms) {
    for (size_t i = 0; i < arms_.size(); ++i) {
      if (arms_[i].label != pa.label) continue;
      base_[i].decisions += pa.decisions;
      base_[i].tuples += pa.tuples;
      base_[i].cycles += pa.cycles;
      break;
    }
  }
}

StrategyProfile StrategyInstance::ExportDelta(const std::string& site) const {
  StrategyProfile p;
  p.site = site;
  p.kind = kind_;
  for (size_t i = 0; i < arms_.size(); ++i) {
    if (live_[i].decisions == 0 && live_[i].tuples == 0) continue;
    p.arms.push_back({arms_[i].label, live_[i].decisions, live_[i].tuples,
                      live_[i].cycles});
  }
  return p;
}

StrategyBook::StrategyBook(StrategyParams params) : params_(params) {}

StrategyBook::Decision StrategyBook::Decide(
    const std::string& site, StrategyKind kind,
    const std::vector<StrategyArm>& arms) {
  Decision d;
  d.key = StrategyKey(site, kind);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instances_.find(d.key);
  if (it == instances_.end()) {
    Entry e;
    e.site = site;
    e.instance =
        std::make_unique<StrategyInstance>(kind, arms, params_);
    auto seed = pending_seeds_.find(d.key);
    if (seed != pending_seeds_.end()) {
      e.instance->Seed(seed->second);
    }
    it = instances_.emplace(d.key, std::move(e)).first;
  }
  StrategyInstance* inst = it->second.instance.get();
  d.arm = inst->Decide();
  // The instance's own arm set rules (the first Decide fixed it); a
  // caller with fewer pool threads than the arm's value clamps at use.
  d.value = inst->arms()[static_cast<size_t>(d.arm)].value;
  return d;
}

void StrategyBook::Reward(const Decision& d, u64 tuples, u64 cycles) {
  if (d.arm < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instances_.find(d.key);
  if (it == instances_.end()) return;
  it->second.instance->Reward(d.arm, tuples, cycles);
}

void StrategyBook::Seed(const std::vector<StrategyProfile>& priors) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StrategyProfile& p : priors) {
    const std::string key = StrategyKey(p.site, p.kind);
    auto it = instances_.find(key);
    if (it != instances_.end()) {
      it->second.instance->Seed(p);
    } else {
      pending_seeds_[key] = p;
    }
  }
}

std::vector<StrategyProfile> StrategyBook::ExportDelta() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StrategyProfile> out;
  for (const auto& [key, e] : instances_) {
    StrategyProfile p = e.instance->ExportDelta(e.site);
    if (!p.arms.empty()) out.push_back(std::move(p));
  }
  return out;
}

u64 StrategyBook::decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& [key, e] : instances_) total += e.instance->decisions();
  return total;
}

u64 StrategyBook::switches() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& [key, e] : instances_) total += e.instance->switches();
  return total;
}

size_t StrategyBook::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instances_.size();
}

std::string StrategyKey(const std::string& site, StrategyKind kind) {
  return site + "/" + StrategyKindName(kind);
}

std::string StrategySitePrefix(u64 stable_hash) {
  static const char* hex = "0123456789abcdef";
  std::string s = "fp";
  for (int shift = 60; shift >= 0; shift -= 4) {
    s.push_back(hex[(stable_hash >> shift) & 0xf]);
  }
  return s;
}

}  // namespace ma
