#include "adapt/warm_start.h"

namespace ma {

std::string WarmStartSnapshot::Key(std::string_view label,
                                   std::string_view signature) {
  // '\x1f' (unit separator) cannot appear in labels or signatures, so
  // the concatenation is collision-free.
  std::string key;
  key.reserve(label.size() + 1 + signature.size());
  key.append(label);
  key.push_back('\x1f');
  key.append(signature);
  return key;
}

void WarmStartSnapshot::Add(std::string_view label,
                            std::string_view signature,
                            std::vector<FlavorPrior> priors) {
  priors_[Key(label, signature)] = std::move(priors);
}

const std::vector<FlavorPrior>* WarmStartSnapshot::Find(
    std::string_view label, std::string_view signature) const {
  const auto it = priors_.find(Key(label, signature));
  return it != priors_.end() ? &it->second : nullptr;
}

}  // namespace ma
