// PrimitiveInstance: one use of a primitive in one place of a query plan
// (paper §1.1 "Primitive Instances"). Different instances of the same
// primitive see different data streams, so each carries its own profiling
// state, Approximated Performance History, and bandit policy. All
// primitive calls in the engine — from the expression evaluator and from
// operators alike — go through PrimitiveInstance::Call, which is where
// Micro Adaptivity happens: choose a flavor, time the call with rdtsc,
// feed the observation back to the policy.
//
// The dispatch path is kept flat and branch-light: eligible flavors are
// resolved once at construction into a bare function-pointer table, the
// heuristic hook is a raw function pointer (no std::function), and in
// chunked mode (AdaptiveConfig::chunk_max > 1) exploitation calls re-run
// the last-chosen flavor without the rdtsc pair or policy round-trip —
// only decision calls are timed, amortizing adaptivity overhead across
// the chunk (the paper's §3.2 argument that profiling must cost well
// under the work it steers). The chunk length K itself adapts: doubling
// while consecutive stable decisions keep electing the same flavor,
// snapping back to 1 when the winner changes or exploration resumes.
//
// Instances are deliberately thread-confined: all bandit state, chunk
// state and usage counters live in the instance, and nothing here writes
// shared memory — morsel-driven parallelism gives each worker thread its
// own instance set and merges the profiles afterwards.
#ifndef MA_ADAPT_PRIMITIVE_INSTANCE_H_
#define MA_ADAPT_PRIMITIVE_INSTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "adapt/aph.h"
#include "adapt/bandit.h"
#include "adapt/warm_start.h"
#include "common/cycleclock.h"
#include "registry/flavor.h"

namespace ma {

/// How the engine picks flavors at runtime.
enum class ExecMode : u8 {
  kDefault,      // always the registered default flavor
  kForcedFlavor, // a named flavor wherever available, else the default
  kHeuristic,    // per-call rule-based choice (paper §4.2 "Heuristics")
  kAdaptive,     // bandit policy (Micro Adaptivity)
};

/// Bitmask over FlavorSetId used to restrict which flavor sets are
/// eligible, so experiments can enable e.g. only the branch set.
constexpr u32 FlavorSetBit(FlavorSetId id) {
  return 1u << static_cast<u32>(id);
}
constexpr u32 kAllFlavorSets = 0xffffffffu;

/// Runtime adaptivity configuration shared by all instances of a query.
struct AdaptiveConfig {
  ExecMode mode = ExecMode::kAdaptive;
  /// For kForcedFlavor: flavor name to force where registered.
  std::string forced_flavor;
  PolicyKind policy = PolicyKind::kVwGreedy;
  PolicyParams params;
  /// Which flavor sets are eligible (default flavors always are).
  u32 enabled_sets = kAllFlavorSets;
  bool keep_aph = true;
  size_t aph_buckets = 512;
  /// Chunked exploitation (kAdaptive only): after a timed decision call
  /// whose policy reports a settled exploitation phase, re-run the same
  /// flavor untimed for K-1 calls before consulting the policy again.
  /// K adapts per instance: it starts small, doubles on every
  /// consecutive stable decision that re-elects the same flavor (up to
  /// chunk_max), and collapses back to per-call dispatch the moment the
  /// winner changes or the policy re-enters exploration — so long
  /// chunks only ever cover calm regimes. chunk_max = 1 disables
  /// chunking (classic per-call adaptivity).
  u64 chunk_max = 1;
  /// false pins K at chunk_max whenever the policy is stable (the fixed-K
  /// behavior), for experiments that need an exact timing cadence.
  bool chunk_adaptive = true;
};

class PrimitiveInstance {
 public:
  /// POD parameter block for heuristic hooks, owned by the instance so
  /// installers need neither allocation nor captures. Field meaning is
  /// up to the installed heuristic (see adapt/heuristics.cc).
  struct HeuristicParams {
    int flavor = 0;
    f64 lo = 0;
    f64 hi = 0;
  };

  /// Per-call heuristic hook: returns the index into `flavors()` to use
  /// for this call. A raw function pointer plus context — installed by
  /// operators when mode is kHeuristic.
  using HeuristicFn = int (*)(const void* ctx, const PrimitiveInstance& self,
                              const PrimCall& call);

  PrimitiveInstance(const FlavorEntry* entry, const AdaptiveConfig& config,
                    std::string label);

  /// Executes one call: picks a flavor, measures cycles, updates the
  /// policy and profiling. Returns the primitive's return value.
  size_t Call(PrimCall& call);

  /// Like Call but with an explicit tuple count for the cost metric
  /// (probe/mergejoin calls where live positions != processed tuples).
  size_t CallN(PrimCall& call, u64 tuples);

  /// Like CallN, but the tuple count is computed *after* the call from
  /// the produced count (cursor-style kernels such as mergejoin, where
  /// the work done is only known once the call returns).
  template <typename F>
  size_t CallDeferred(PrimCall& call, F&& tuples_of_produced) {
    if (chunk_left_ > 0) {
      --chunk_left_;
      const int f = last_flavor_;
      const size_t produced = fns_[f](call);
      RecordUntimed(f, produced, tuples_of_produced(produced));
      return produced;
    }
    const int f = PickFlavor(call);
    last_flavor_ = f;
    const u64 t0 = CycleClock::Now();
    const size_t produced = fns_[f](call);
    const u64 dt = CycleClock::Now() - t0;
    Record(f, produced, tuples_of_produced(produced), dt);
    return produced;
  }

  void set_heuristic(HeuristicFn fn, const void* ctx = nullptr) {
    heuristic_ = fn;
    heuristic_ctx_ = ctx;
  }
  HeuristicParams& heuristic_params() { return heuristic_params_; }

  // --- introspection ---
  const std::string& label() const { return label_; }
  const FlavorEntry* entry() const { return entry_; }
  /// Eligible flavors (subset of entry()->flavors).
  const std::vector<const FlavorInfo*>& flavors() const { return flavors_; }
  int num_flavors() const { return static_cast<int>(flavors_.size()); }
  /// Index into flavors() of the last flavor used.
  int last_flavor() const { return last_flavor_; }
  /// Output selectivity of the previous call (produced / live input);
  /// 1.0 before the first call. What the selection heuristics key on.
  f64 last_output_selectivity() const {
    return last_live_ == 0
               ? 1.0
               : static_cast<f64>(last_produced_) / last_live_;
  }
  int FindFlavor(std::string_view name) const;

  u64 calls() const { return calls_; }
  u64 tuples() const { return tuples_; }
  /// Cycles measured inside primitive calls. In chunked mode only the
  /// decision calls are timed, so this is a sample, not a census;
  /// MeanCostPerTuple stays unbiased by dividing through the tuples of
  /// exactly those timed calls.
  u64 cycles() const { return cycles_; }
  f64 MeanCostPerTuple() const {
    return timed_tuples_ == 0
               ? 0.0
               : static_cast<f64>(cycles_) / timed_tuples_;
  }
  const Aph* aph() const { return aph_.get(); }
  /// Per-eligible-flavor cumulative (calls, tuples, cycles).
  struct FlavorUsage {
    u64 calls = 0;
    u64 tuples = 0;
    u64 cycles = 0;
    /// Tuples of the TIMED calls only. In chunked mode most calls skip
    /// the rdtsc pair, so cycles/tuples under-estimates cost;
    /// cycles/timed_tuples is the unbiased per-flavor mean the
    /// knowledge store turns into warm-start priors.
    u64 timed_tuples = 0;
  };
  const std::vector<FlavorUsage>& usage() const { return usage_; }

  /// Installs warm-start priors on this instance's bandit: each prior's
  /// flavor name is resolved against the eligible flavors() (unknown or
  /// disabled flavors are skipped — a store written under a different
  /// flavor-set configuration degrades gracefully). No-op outside
  /// kAdaptive mode or for single-flavor instances. Reward state only —
  /// results are unaffected by construction (see adapt/warm_start.h).
  void SeedPriors(const std::vector<FlavorPrior>& priors);

  /// Current chunked-dispatch length K (1 = per-call dispatch). Grows
  /// while the winning flavor is stable, shrinks on regime change.
  u64 current_chunk_k() const { return chunk_k_; }

  /// True if any registered flavor of this primitive belongs to `set` —
  /// i.e. this instance is "affected by" the flavor set in the sense of
  /// Tables 6-10. Mask precomputed at construction.
  bool AffectedBy(FlavorSetId set) const {
    return (affected_sets_ & FlavorSetBit(set)) != 0;
  }

  BanditPolicy* policy() { return policy_.get(); }

 private:
  int PickFlavor(const PrimCall& call);
  void Record(int flavor, size_t produced, u64 tuples, u64 cycles);
  /// Bookkeeping for chunked exploitation calls (no timing, no policy
  /// feedback, no APH sample).
  void RecordUntimed(int flavor, size_t produced, u64 tuples);

  const FlavorEntry* entry_;
  std::string label_;
  ExecMode mode_;
  std::vector<const FlavorInfo*> flavors_;
  /// Flat dispatch table: fns_[i] == flavors_[i]->fn. The hot path
  /// touches only this contiguous array.
  std::vector<PrimFn> fns_;
  u32 affected_sets_ = 0;
  int fixed_index_ = 0;
  std::unique_ptr<BanditPolicy> policy_;
  HeuristicFn heuristic_ = nullptr;
  const void* heuristic_ctx_ = nullptr;
  HeuristicParams heuristic_params_;

  u64 chunk_max_ = 1;
  bool chunk_adaptive_ = true;
  /// Current chunk length K; grows geometrically while the same flavor
  /// keeps winning stable decisions, resets to 1 on a regime change.
  u64 chunk_k_ = 1;
  u64 chunk_left_ = 0;
  int last_decision_flavor_ = -1;

  int last_flavor_ = 0;
  u64 last_produced_ = 0;
  u64 last_live_ = 0;
  u64 calls_ = 0;
  u64 tuples_ = 0;
  u64 cycles_ = 0;
  u64 timed_tuples_ = 0;
  std::unique_ptr<Aph> aph_;
  std::vector<FlavorUsage> usage_;
};

}  // namespace ma

#endif  // MA_ADAPT_PRIMITIVE_INSTANCE_H_
