#include "adapt/aph.h"

#include <algorithm>

#include "common/status.h"

namespace ma {

Aph::Aph(size_t max_buckets) : max_buckets_(max_buckets) {
  MA_CHECK(max_buckets_ >= 2 && max_buckets_ % 2 == 0);
  buckets_.reserve(max_buckets_);
}

void Aph::Add(u64 tuples, u64 cycles) {
  ++total_calls_;
  total_tuples_ += tuples;
  total_cycles_ += cycles;
  if (buckets_.empty() || buckets_.back().calls == calls_per_bucket_) {
    if (buckets_.size() == max_buckets_) MergePairs();
    buckets_.push_back(Bucket{});
  }
  Bucket& b = buckets_.back();
  b.calls += 1;
  b.tuples += tuples;
  b.cycles += cycles;
}

void Aph::MergePairs() {
  const size_t half = buckets_.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    Bucket merged;
    merged.calls = buckets_[2 * i].calls + buckets_[2 * i + 1].calls;
    merged.tuples = buckets_[2 * i].tuples + buckets_[2 * i + 1].tuples;
    merged.cycles = buckets_[2 * i].cycles + buckets_[2 * i + 1].cycles;
    buckets_[i] = merged;
  }
  buckets_.resize(half);
  calls_per_bucket_ *= 2;
}

void Aph::Reset() {
  buckets_.clear();
  calls_per_bucket_ = 1;
  total_calls_ = 0;
  total_tuples_ = 0;
  total_cycles_ = 0;
}

u64 Aph::OptCycles(const std::vector<const Aph*>& flavors) {
  MA_CHECK(!flavors.empty());
  // All flavors ran the same call sequence, so bucket layouts agree as
  // long as total call counts agree; be defensive about small drift at
  // the tail (e.g. an aborted run) by iterating the shared prefix.
  size_t min_buckets = flavors[0]->buckets().size();
  for (const Aph* a : flavors) {
    min_buckets = std::min(min_buckets, a->buckets().size());
  }
  u64 opt = 0;
  for (size_t b = 0; b < min_buckets; ++b) {
    u64 best = flavors[0]->buckets()[b].cycles;
    for (size_t f = 1; f < flavors.size(); ++f) {
      best = std::min(best, flavors[f]->buckets()[b].cycles);
    }
    opt += best;
  }
  // Any unshared tail buckets: charge the first flavor's cost (rare).
  for (size_t b = min_buckets; b < flavors[0]->buckets().size(); ++b) {
    opt += flavors[0]->buckets()[b].cycles;
  }
  return opt;
}

}  // namespace ma
