#include "adapt/machine_sim.h"

#include <algorithm>
#include <cmath>

namespace ma {

std::vector<MachineModel> PaperMachines() {
  // Cache sizes follow Table 2; penalties/widths are era-plausible.
  return {
      MachineModel{"Machine 1 (Nehalem, 12MB LLC)", 12u << 20, 180, 5, 4,
                   18},
      MachineModel{"Machine 2 (Core2, 4MB LLC)", 4u << 20, 240, 2, 4, 14},
      MachineModel{"Machine 3 (AMD Egypt, 1MB LLC)", 1u << 20, 220, 3, 2,
                   12},
      MachineModel{"Machine 4 (Sandy Bridge, 8MB LLC)", 8u << 20, 160, 6,
                   8, 16},
  };
}

namespace {

/// Fraction of bloom probes missing the LLC for a filter of this size:
/// ~0 when the filter fits, approaching 1 as it dwarfs the cache.
f64 MissFraction(const MachineModel& m, u64 bytes) {
  if (bytes <= m.llc_bytes / 2) return 0.0;
  const f64 ratio = static_cast<f64>(bytes) / static_cast<f64>(m.llc_bytes);
  // Cache keeps ~llc/bytes of the filter resident once it exceeds LLC.
  return std::clamp(1.0 - 0.5 / ratio, 0.0, 0.98);
}

}  // namespace

f64 PredictBloomCost(const MachineModel& m, u64 bloom_bytes, bool fission) {
  const f64 base = fission ? 5.0 : 4.0;  // fission runs two loops
  const f64 miss = MissFraction(m, bloom_bytes);
  // Fused: the loop-carried dependency serializes misses. Fission:
  // up to `mlp` misses overlap.
  const f64 effective_penalty =
      fission ? m.miss_penalty / static_cast<f64>(m.mlp) : m.miss_penalty;
  return base + miss * effective_penalty;
}

f64 PredictBloomFissionSpeedup(const MachineModel& m, u64 bloom_bytes) {
  return PredictBloomCost(m, bloom_bytes, false) /
         PredictBloomCost(m, bloom_bytes, true);
}

f64 PredictSelectionCost(const MachineModel& m, f64 selectivity,
                         bool branching) {
  if (!branching) return 5.0;  // constant work
  // Branch mispredict rate peaks at 50% selectivity: 2*s*(1-s) per tuple.
  const f64 mispredict = 2.0 * selectivity * (1.0 - selectivity);
  return 2.0 + 3.0 * selectivity + mispredict * m.branch_miss_cost;
}

f64 PredictMapCost(const MachineModel& m, f64 density, int width_bytes,
                   bool full_computation) {
  // SIMD lanes scale inversely with element width relative to 32-bit.
  const f64 lanes =
      std::max(1.0, m.simd_lanes_32 * 4.0 / static_cast<f64>(width_bytes));
  if (full_computation) {
    // Computes all positions at SIMD speed, regardless of density.
    return 2.0 / lanes + 0.3;
  }
  // Selective computation: scalar gather loop over `density * n` tuples;
  // cost *per live tuple* is constant, so per input position it scales
  // with density.
  return 2.2 * density + 0.2;
}

f64 PredictFullComputeSpeedup(const MachineModel& m, f64 density,
                              int width_bytes) {
  if (density <= 0.0) return 0.0;
  // Speedup per *live tuple*: selective cost per live tuple is constant,
  // full-computation cost per live tuple is total cost / live count.
  const f64 selective_per_live = 2.2 + 0.2;
  const f64 full_total = PredictMapCost(m, density, width_bytes, true);
  const f64 full_per_live = full_total / density;
  return selective_per_live / full_per_live;
}

f64 PredictMergeJoinCost(const MachineModel& m, int style) {
  // Style cost = scalar work + branchy control; which wins depends on
  // branch cost and MLP of the machine, flipping the order (Figure 5).
  switch (style) {
    case 0:  // gcc-like: balanced
      return 4.0 + 0.15 * m.branch_miss_cost;
    case 1:  // icc-like: unrolled/galloping — branch-light but heavy on
             // straight-line work, so it shines exactly where branch
             // misses are expensive (Nehalem) and loses where they are
             // cheap (AMD Egypt), as in Figure 5.
      return 9.5 - 0.27 * m.branch_miss_cost;
    default:  // clang-like: lean scalar loop, branch heavy
      return 3.0 + 0.25 * m.branch_miss_cost;
  }
}

}  // namespace ma
