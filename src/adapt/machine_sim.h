// Analytical machine model used to reproduce the paper's *cross-machine*
// claims (Table 2 machines; Figures 5, 6, 8) on a single host. We measure
// the real curves on this machine, and use this model to show how the
// cross-over points move as cache size / SIMD width / miss latency vary —
// the paper's point being precisely that these cross-overs are machine
// dependent and therefore hopeless to hard-code.
#ifndef MA_ADAPT_MACHINE_SIM_H_
#define MA_ADAPT_MACHINE_SIM_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace ma {

/// Cache/core parameters of a simulated machine (values chosen to mimic
/// the paper's Table 2 inventory).
struct MachineModel {
  std::string name;
  u64 llc_bytes;          // last-level cache size
  f64 miss_penalty;       // cycles per LLC miss
  int mlp;                // max outstanding misses (memory-level parallelism)
  f64 simd_lanes_32;      // effective 32-bit SIMD lanes (1 = scalar)
  f64 branch_miss_cost;   // cycles per mispredicted branch
};

/// The four machines of Table 2 (Nehalem, Core2, AMD Egypt, Sandy
/// Bridge), parameterized by their documented cache sizes.
std::vector<MachineModel> PaperMachines();

/// Predicted cycles/tuple of the bloom-filter probe for a filter of
/// `bloom_bytes`, with (fission=true) or without loop fission. The fused
/// loop's dependency chain serializes misses; fission overlaps up to
/// `mlp` of them (paper §2 "Loop Fission").
f64 PredictBloomCost(const MachineModel& m, u64 bloom_bytes, bool fission);

/// Predicted fission speedup = fused cost / fission cost (Figure 6).
f64 PredictBloomFissionSpeedup(const MachineModel& m, u64 bloom_bytes);

/// Predicted cycles/tuple for a selection primitive at a given output
/// selectivity, branching vs no-branching (Figure 1 shape).
f64 PredictSelectionCost(const MachineModel& m, f64 selectivity,
                         bool branching);

/// Predicted cycles/tuple of map multiplication under selective vs full
/// computation at the given selection density and data width in bytes
/// (Figure 8 shape: SIMD benefits scale inversely with width).
f64 PredictMapCost(const MachineModel& m, f64 density, int width_bytes,
                   bool full_computation);

/// Predicted full-computation speedup (selective / full).
f64 PredictFullComputeSpeedup(const MachineModel& m, f64 density,
                              int width_bytes);

/// Predicted cycles/tuple of the mergejoin kernel per "compiler" style
/// (0 = gcc-like, 1 = icc-like, 2 = clang-like); the styles' relative
/// order flips with machine traits (Figure 5).
f64 PredictMergeJoinCost(const MachineModel& m, int style);

}  // namespace ma

#endif  // MA_ADAPT_MACHINE_SIM_H_
