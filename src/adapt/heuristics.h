// The hard-coded heuristics baseline of paper §4.2: instead of learning,
// pick flavors from rules with tuned thresholds — no-branching selection
// between 10% and 90% observed selectivity, full computation above 30%
// selection density, loop fission above a bloom-filter size threshold.
// The paper tuned these to Machine 1 as a best-case competitor; the
// thresholds here are the knobs the TPC-H benches tune on this machine.
#ifndef MA_ADAPT_HEURISTICS_H_
#define MA_ADAPT_HEURISTICS_H_

#include "adapt/primitive_instance.h"

namespace ma {

struct HeuristicThresholds {
  /// Use no-branching selection when the previous call's output
  /// selectivity lies in [branch_lo, branch_hi].
  f64 branch_lo = 0.10;
  f64 branch_hi = 0.90;
  /// Use full computation when the input selection vector covers at
  /// least this fraction of the vector.
  f64 full_compute_min = 0.30;
  /// Use loop fission when the bloom filter exceeds this many bytes
  /// (meant to approximate the last-level cache size).
  u64 fission_min_bytes = 2u << 20;
};

/// Installs the selection (branch vs no-branch) heuristic on `inst`.
/// No-op if the instance lacks a "nobranching" flavor.
void InstallBranchHeuristic(PrimitiveInstance* inst,
                            const HeuristicThresholds& th);

/// Installs the full-computation heuristic on a map instance. No-op if
/// the instance lacks a "full" flavor.
void InstallFullComputeHeuristic(PrimitiveInstance* inst,
                                 const HeuristicThresholds& th);

/// Installs the loop-fission heuristic on a bloom-probe instance, given
/// the size of the filter it probes (known at build time).
void InstallFissionHeuristic(PrimitiveInstance* inst,
                             const HeuristicThresholds& th,
                             u64 bloom_bytes);

/// Installs whichever of the above applies, inferring the family from
/// the instance's registered flavors. `bloom_bytes` is consulted for
/// bloom probes only (pass 0 if unknown: fission stays off).
void InstallHeuristics(PrimitiveInstance* inst,
                       const HeuristicThresholds& th, u64 bloom_bytes = 0);

}  // namespace ma

#endif  // MA_ADAPT_HEURISTICS_H_
