#include "adapt/primitive_instance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/cycleclock.h"
#include "common/status.h"

namespace ma {

PrimitiveInstance::PrimitiveInstance(const FlavorEntry* entry,
                                     const AdaptiveConfig& config,
                                     std::string label)
    : entry_(entry), label_(std::move(label)), mode_(config.mode) {
  MA_CHECK(entry_ != nullptr && !entry_->flavors.empty());

  // Eligible flavors: the registered default plus every flavor whose set
  // is enabled. Order: default first (index 0), then by registration.
  const FlavorInfo* def = &entry_->flavors[entry_->default_index];
  flavors_.push_back(def);
  for (const FlavorInfo& f : entry_->flavors) {
    if (&f == def) continue;
    if (config.enabled_sets & FlavorSetBit(f.set)) flavors_.push_back(&f);
  }
  // Pre-resolve everything the hot path (or per-call introspection)
  // would otherwise chase pointers for.
  fns_.reserve(flavors_.size());
  for (const FlavorInfo* f : flavors_) fns_.push_back(f->fn);
  for (const FlavorInfo& f : entry_->flavors) {
    affected_sets_ |= FlavorSetBit(f.set);
  }

  switch (mode_) {
    case ExecMode::kDefault:
      fixed_index_ = 0;
      break;
    case ExecMode::kForcedFlavor: {
      const int idx = FindFlavor(config.forced_flavor);
      fixed_index_ = idx >= 0 ? idx : 0;
      break;
    }
    case ExecMode::kHeuristic:
      fixed_index_ = 0;
      break;
    case ExecMode::kAdaptive:
      if (flavors_.size() > 1) {
        policy_ = MakePolicy(config.policy,
                             static_cast<int>(flavors_.size()),
                             config.params);
        chunk_max_ = config.chunk_max > 0 ? config.chunk_max : 1;
        chunk_adaptive_ = config.chunk_adaptive;
      }
      fixed_index_ = 0;
      break;
  }
  if (config.keep_aph) aph_ = std::make_unique<Aph>(config.aph_buckets);
  usage_.resize(flavors_.size());
}

int PrimitiveInstance::FindFlavor(std::string_view name) const {
  for (size_t i = 0; i < flavors_.size(); ++i) {
    if (flavors_[i]->name == name) return static_cast<int>(i);
  }
  return -1;
}

void PrimitiveInstance::SeedPriors(const std::vector<FlavorPrior>& priors) {
  if (policy_ == nullptr) return;  // non-adaptive or single-flavor
  std::vector<f64> costs(flavors_.size(),
                         std::numeric_limits<f64>::infinity());
  bool any = false;
  for (const FlavorPrior& p : priors) {
    const int f = FindFlavor(p.flavor);
    if (f < 0) continue;  // flavor unknown or not eligible here
    if (!std::isfinite(p.cost_per_tuple) || p.cost_per_tuple <= 0) continue;
    costs[f] = p.cost_per_tuple;
    any = true;
  }
  if (any) policy_->SeedPriors(costs);
}

int PrimitiveInstance::PickFlavor(const PrimCall& call) {
  switch (mode_) {
    case ExecMode::kDefault:
    case ExecMode::kForcedFlavor:
      return fixed_index_;
    case ExecMode::kHeuristic:
      return heuristic_ != nullptr ? heuristic_(heuristic_ctx_, *this, call)
                                   : fixed_index_;
    case ExecMode::kAdaptive:
      return policy_ ? policy_->Choose() : fixed_index_;
  }
  return 0;
}

size_t PrimitiveInstance::Call(PrimCall& call) {
  return CallN(call, call.sel != nullptr ? call.sel_n : call.n);
}

size_t PrimitiveInstance::CallN(PrimCall& call, u64 tuples) {
  if (chunk_left_ > 0) {
    // Chunked exploitation: re-run the settled flavor, skip the rdtsc
    // pair and the policy round-trip entirely.
    --chunk_left_;
    const int f = last_flavor_;
    const size_t produced = fns_[f](call);
    RecordUntimed(f, produced, tuples);
    return produced;
  }
  const int f = PickFlavor(call);
  last_flavor_ = f;
  const u64 t0 = CycleClock::Now();
  const size_t produced = fns_[f](call);
  const u64 dt = CycleClock::Now() - t0;
  Record(f, produced, tuples, dt);
  return produced;
}

void PrimitiveInstance::Record(int flavor, size_t produced, u64 tuples,
                               u64 cycles) {
  if (policy_ != nullptr) {
    policy_->Update(tuples, cycles);
    // Replay-safety: the chunk re-runs `flavor` (== last_flavor_), so it
    // only starts when the policy — in its post-Update state — would
    // itself keep choosing that flavor.
    if (chunk_max_ > 1) {
      if (policy_->ExploitationStable(flavor)) {
        if (!chunk_adaptive_) {
          chunk_k_ = chunk_max_;
        } else if (flavor == last_decision_flavor_) {
          // Same winner re-elected while stable: the regime is calm,
          // double the untimed stretch (up to the cap).
          chunk_k_ = std::min(chunk_k_ * 2, chunk_max_);
        } else {
          // Fresh winner: start with a short chunk so a mistake costs
          // little before the next timed decision.
          chunk_k_ = 2;
        }
        chunk_left_ = chunk_k_ - 1;
      } else {
        // Regime change or active exploration: every call must be a
        // timed decision again until the policy re-settles.
        chunk_k_ = 1;
      }
      last_decision_flavor_ = flavor;
    }
  }
  ++calls_;
  tuples_ += tuples;
  cycles_ += cycles;
  timed_tuples_ += tuples;
  usage_[flavor].calls += 1;
  usage_[flavor].tuples += tuples;
  usage_[flavor].cycles += cycles;
  usage_[flavor].timed_tuples += tuples;
  if (aph_) aph_->Add(tuples, cycles);
  last_produced_ = produced;
  last_live_ = tuples;
}

void PrimitiveInstance::RecordUntimed(int flavor, size_t produced,
                                      u64 tuples) {
  ++calls_;
  tuples_ += tuples;
  usage_[flavor].calls += 1;
  usage_[flavor].tuples += tuples;
  last_produced_ = produced;
  last_live_ = tuples;
}

}  // namespace ma
