// Macro-adaptivity: per-stage execution strategies treated as flavors
// (the paper's method lifted from primitive call sites to plan stages).
// A StrategyInstance is a deterministic explore-then-exploit bandit over
// a small set of arms — per-stage thread count {serial, 2, N}, bloom
// filter on/off per join-build site, morsel size {small, default,
// large} — rewarded by measured stage throughput (input tuples per
// wall-clock stage cycle). A StrategyBook holds one instance per
// (plan fingerprint, stage id, decision kind) site and is shared across
// the sessions of one WorkloadServer, so what one query learned about a
// stage steers the next execution of the same plan.
//
// Decision cadence is ~one per stage per query — thousands of times
// rarer than primitive calls — so this is NOT vw-greedy (whose
// exploration/exploitation periods assume thousands of calls). The rule
// is deterministic: sweep arms never chosen, then exploit the lowest
// measured cycles/tuple, re-exploring the least-chosen arm every
// `explore_every`-th decision so a stale estimate is corrected, not
// trusted forever. Determinism matters for testability: the same seeded
// stats and the same reward feed reproduce the same arm sequence.
//
// Contract (docs/ADAPTIVITY.md "Macro-adaptivity"): strategies steer
// time, never bytes. Every arm of every decision kind is byte-neutral
// by construction — worker count, morsel size and bloom filters cannot
// change result tables under the repo's determinism contract — so
// learned strategy state is reward state, exactly like flavor priors.
#ifndef MA_ADAPT_STRATEGY_H_
#define MA_ADAPT_STRATEGY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace ma {

/// What a strategy decision controls. Values are persisted (ProfileStore
/// format v2) — append new kinds, never renumber.
enum class StrategyKind : u8 {
  kThreadCount = 0,  // workers driving a parallel stage
  kBloom = 1,        // bloom filter on/off for a join-build site
  kMorselSize = 2,   // rows per morsel for a stage's scan
};

/// Stable short name ("threads" / "bloom" / "morsel") used in record
/// keys and reports.
const char* StrategyKindName(StrategyKind kind);

/// One selectable strategy at a site. `value` carries the decision
/// payload (worker count, 0/1 for bloom, rows per morsel); `label` is
/// the stable identity stats are keyed by across processes.
struct StrategyArm {
  std::string label;
  u64 value = 0;
};

/// Persisted knowledge about one strategy site — the new ProfileStore
/// record kind. Lives in adapt/ so the knowledge layer can serialize it
/// without the execution layer depending on the store.
struct StrategyProfile {
  struct Arm {
    std::string label;
    u64 decisions = 0;
    u64 tuples = 0;
    u64 cycles = 0;
  };
  std::string site;  // e.g. "fp0123456789abcdef/s3"
  StrategyKind kind = StrategyKind::kThreadCount;
  std::vector<Arm> arms;
};

struct StrategyParams {
  /// After the initial sweep, every Nth decision picks the least-chosen
  /// arm instead of the cheapest — periodic re-exploration.
  u64 explore_every = 16;
};

/// Deterministic stage-scale bandit over a fixed arm set. Not
/// thread-safe by itself; StrategyBook serializes access.
class StrategyInstance {
 public:
  StrategyInstance(StrategyKind kind, std::vector<StrategyArm> arms,
                   StrategyParams params = StrategyParams());

  /// Picks the arm for the next execution: unswept arm (lowest index)
  /// first, then every explore_every-th decision the least-chosen arm,
  /// otherwise the arm with the lowest measured cycles/tuple (ties and
  /// never-rewarded arms resolve to the lowest index). Increments the
  /// chosen arm's decision count.
  int Decide();

  /// Credits `arm` with a measured execution: `tuples` stage input rows
  /// in `cycles` wall cycles. Called only after a successful run —
  /// failed attempts never reward (their timings are partial).
  void Reward(int arm, u64 tuples, u64 cycles);

  /// Folds persisted stats into the seeded base by arm label. Seeded
  /// arms count as swept, so a warm instance exploits immediately;
  /// unknown labels are ignored (arm sets may evolve).
  void Seed(const StrategyProfile& prior);

  /// Live (post-seed) stats only, for merging back into a store without
  /// double-counting what was seeded in.
  StrategyProfile ExportDelta(const std::string& site) const;

  StrategyKind kind() const { return kind_; }
  const std::vector<StrategyArm>& arms() const { return arms_; }
  u64 decisions() const { return decide_count_; }
  /// How often Decide() returned a different arm than the previous call.
  u64 switches() const { return switches_; }

 private:
  struct ArmStats {
    u64 decisions = 0;
    u64 tuples = 0;
    u64 cycles = 0;
  };

  f64 CostOf(size_t i) const;  // (base+live) cycles per tuple, inf if unmeasured
  u64 TotalDecisions(size_t i) const;

  StrategyKind kind_;
  std::vector<StrategyArm> arms_;
  StrategyParams params_;
  std::vector<ArmStats> base_;  // seeded from the store
  std::vector<ArmStats> live_;  // accumulated this process
  u64 decide_count_ = 0;
  u64 switches_ = 0;
  int last_arm_ = -1;
};

/// Thread-safe registry of StrategyInstances keyed by
/// (site, decision kind); shared across the driver sessions of one
/// server. Instances are created on first Decide and live as long as
/// the book, so Decision tokens stay valid across queries.
class StrategyBook {
 public:
  explicit StrategyBook(StrategyParams params = StrategyParams());

  /// Token tying a decision to its instance so the reward lands on the
  /// arm that actually ran.
  struct Decision {
    std::string key;  // site + "/" + kind name
    int arm = -1;
    u64 value = 0;  // chosen arm's payload (workers / 0|1 / morsel rows)
  };

  /// Resolves the strategy for `site`/`kind`, creating (and seeding,
  /// when priors are pending) the instance on first use. The first
  /// call's `arms` fix the instance's arm set; later calls reuse it.
  Decision Decide(const std::string& site, StrategyKind kind,
                  const std::vector<StrategyArm>& arms);

  /// Credits the decided arm with a measured (tuples, cycles) outcome.
  void Reward(const Decision& d, u64 tuples, u64 cycles);

  /// Installs persisted profiles as seed priors: instances that already
  /// exist are seeded now, future instances at seed time.
  void Seed(const std::vector<StrategyProfile>& priors);

  /// Live stats of every instance that made at least one decision, in
  /// key order — the store-merge payload (seeded bases excluded).
  std::vector<StrategyProfile> ExportDelta() const;

  u64 decisions() const;
  u64 switches() const;
  size_t size() const;

 private:
  struct Entry {
    std::string site;
    std::unique_ptr<StrategyInstance> instance;
  };

  StrategyParams params_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> instances_;
  std::map<std::string, StrategyProfile> pending_seeds_;
};

/// Record/instance key for a (site, kind) pair — shared by the book and
/// the ProfileStore so seeded and exported records line up.
std::string StrategyKey(const std::string& site, StrategyKind kind);

/// Site prefix for one plan: "fp" + 16 hex digits of the plan's STABLE
/// fingerprint hash (plan/plan_fingerprint.h stable_hash — no table
/// pointers, so the key survives process restarts). Stages append
/// "/s<id>"; the post-merge tail sort appends "/tail".
std::string StrategySitePrefix(u64 stable_hash);

/// Macro-adaptivity wiring for a QuerySession (plan/query_session.h).
struct MacroAdaptConfig {
  /// Off by default: the static heuristics (kAuto row gate, bloom
  /// always-on, fixed morsel size) stay in charge unless a server or
  /// bench opts in.
  bool enabled = false;
  /// Shared across sessions (one book per server); a session creates a
  /// private book when enabled with none supplied.
  std::shared_ptr<StrategyBook> book;
  StrategyParams params;
  /// The {small, default, large} morsel arms; default comes from
  /// ParallelConfig::morsel_size.
  u64 small_morsel_rows = 16 * 1024;
  u64 large_morsel_rows = 256 * 1024;
};

}  // namespace ma

#endif  // MA_ADAPT_STRATEGY_H_
