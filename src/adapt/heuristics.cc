#include "adapt/heuristics.h"

namespace ma {

// The hooks are capture-less lambdas (plain function pointers); their
// tuned parameters live in the instance-owned HeuristicParams block, so
// installing a heuristic allocates nothing and the per-call dispatch
// stays a raw indirect call.

void InstallBranchHeuristic(PrimitiveInstance* inst,
                            const HeuristicThresholds& th) {
  const int nb = inst->FindFlavor("nobranching");
  if (nb < 0) return;
  auto& p = inst->heuristic_params();
  p.flavor = nb;
  p.lo = th.branch_lo;
  p.hi = th.branch_hi;
  inst->set_heuristic(
      [](const void* ctx, const PrimitiveInstance& self, const PrimCall&) {
        const auto* hp =
            static_cast<const PrimitiveInstance::HeuristicParams*>(ctx);
        const f64 s = self.last_output_selectivity();
        return (s >= hp->lo && s <= hp->hi) ? hp->flavor : 0;
      },
      &p);
}

void InstallFullComputeHeuristic(PrimitiveInstance* inst,
                                 const HeuristicThresholds& th) {
  const int full = inst->FindFlavor("full");
  if (full < 0) return;
  auto& p = inst->heuristic_params();
  p.flavor = full;
  p.lo = th.full_compute_min;
  inst->set_heuristic(
      [](const void* ctx, const PrimitiveInstance&, const PrimCall& c) {
        const auto* hp =
            static_cast<const PrimitiveInstance::HeuristicParams*>(ctx);
        if (c.sel == nullptr || c.n == 0) return 0;  // dense: default path
        const f64 density =
            static_cast<f64>(c.sel_n) / static_cast<f64>(c.n);
        return density >= hp->lo ? hp->flavor : 0;
      },
      &p);
}

void InstallFissionHeuristic(PrimitiveInstance* inst,
                             const HeuristicThresholds& th,
                             u64 bloom_bytes) {
  const int fission = inst->FindFlavor("fission");
  if (fission < 0) return;
  auto& p = inst->heuristic_params();
  p.flavor = bloom_bytes >= th.fission_min_bytes ? fission : 0;
  inst->set_heuristic(
      [](const void* ctx, const PrimitiveInstance&, const PrimCall&) {
        return static_cast<const PrimitiveInstance::HeuristicParams*>(ctx)
            ->flavor;
      },
      &p);
}

void InstallHeuristics(PrimitiveInstance* inst,
                       const HeuristicThresholds& th, u64 bloom_bytes) {
  if (inst->FindFlavor("nobranching") >= 0) {
    InstallBranchHeuristic(inst, th);
  } else if (inst->FindFlavor("full") >= 0) {
    InstallFullComputeHeuristic(inst, th);
  } else if (inst->FindFlavor("fission") >= 0) {
    InstallFissionHeuristic(inst, th, bloom_bytes);
  }
  // Compiler and unroll flavor sets have no plausible heuristic — the
  // paper makes exactly this point — so those instances stay on the
  // default flavor in heuristic mode.
}

}  // namespace ma
