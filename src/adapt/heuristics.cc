#include "adapt/heuristics.h"

namespace ma {

void InstallBranchHeuristic(PrimitiveInstance* inst,
                            const HeuristicThresholds& th) {
  const int nb = inst->FindFlavor("nobranching");
  if (nb < 0) return;
  const PrimitiveInstance* self = inst;
  inst->set_heuristic([self, nb, th](const PrimCall&) {
    const f64 s = self->last_output_selectivity();
    return (s >= th.branch_lo && s <= th.branch_hi) ? nb : 0;
  });
}

void InstallFullComputeHeuristic(PrimitiveInstance* inst,
                                 const HeuristicThresholds& th) {
  const int full = inst->FindFlavor("full");
  if (full < 0) return;
  inst->set_heuristic([full, th](const PrimCall& c) {
    if (c.sel == nullptr || c.n == 0) return 0;  // dense: default path
    const f64 density = static_cast<f64>(c.sel_n) / static_cast<f64>(c.n);
    return density >= th.full_compute_min ? full : 0;
  });
}

void InstallFissionHeuristic(PrimitiveInstance* inst,
                             const HeuristicThresholds& th,
                             u64 bloom_bytes) {
  const int fission = inst->FindFlavor("fission");
  if (fission < 0) return;
  const int choice = bloom_bytes >= th.fission_min_bytes ? fission : 0;
  inst->set_heuristic([choice](const PrimCall&) { return choice; });
}

void InstallHeuristics(PrimitiveInstance* inst,
                       const HeuristicThresholds& th, u64 bloom_bytes) {
  if (inst->FindFlavor("nobranching") >= 0) {
    InstallBranchHeuristic(inst, th);
  } else if (inst->FindFlavor("full") >= 0) {
    InstallFullComputeHeuristic(inst, th);
  } else if (inst->FindFlavor("fission") >= 0) {
    InstallFissionHeuristic(inst, th, bloom_bytes);
  }
  // Compiler and unroll flavor sets have no plausible heuristic — the
  // paper makes exactly this point — so those instances stay on the
  // default flavor in heuristic mode.
}

}  // namespace ma
