#include "knowledge/profile_store.h"

#include <cstdio>
#include <cstring>

namespace ma::knowledge {

namespace {

// File format v2:
//   u32 magic 'MAKS' | u32 version | u64 payload_size | u64 fnv1a64(payload)
//   payload: u64 profile_count, then per profile:
//     str site | str signature | u64 queries | u64 instances
//     u64 calls | u64 tuples | u64 cycles | u32 flavor_count
//     per flavor: str name | u64 calls | u64 tuples | u64 cycles
//                 u64 timed_tuples
//   then (new in v2) u64 strategy_count, per strategy record:
//     str site | u8 kind | u32 arm_count
//     per arm: str label | u64 decisions | u64 tuples | u64 cycles
//   str = u32 length + bytes. All integers little-endian.
// Readers reject any other version (all-or-nothing Load), so a v1 file
// cold-starts a v2 store cleanly instead of being half-read.
constexpr u32 kMagic = 0x534B414Du;  // 'MAKS'
constexpr u32 kVersion = 2;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;

u64 Fnv1a64(std::string_view bytes) {
  u64 h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void PutU32(std::string* out, u32 v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, u64 v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<u32>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over the payload.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool U8(u8* v) {
    if (bytes_.size() - pos_ < 1) return false;
    *v = static_cast<u8>(bytes_[pos_]);
    pos_ += 1;
    return true;
  }
  bool U32(u32* v) {
    if (bytes_.size() - pos_ < 4) return false;
    std::memcpy(v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool U64(u64* v) {
    if (bytes_.size() - pos_ < 8) return false;
    std::memcpy(v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool Str(std::string* s) {
    u32 len = 0;
    if (!U32(&len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

void ProfileStore::Merge(const std::vector<InstanceProfile>& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  bool merged_any = false;
  for (const InstanceProfile& p : profile) {
    if (p.calls == 0) continue;  // never ran (e.g. pruned stage)
    StoredProfile& sp = profiles_[Key(p.label, p.signature)];
    if (sp.site.empty()) {
      sp.site = p.label;
      sp.signature = p.signature;
    }
    sp.queries += 1;
    sp.instances += static_cast<u64>(p.instances);
    sp.calls += p.calls;
    sp.tuples += p.tuples;
    sp.cycles += p.cycles;
    for (const FlavorUsageProfile& f : p.flavors) {
      StoredFlavor* row = nullptr;
      for (StoredFlavor& sf : sp.flavors) {
        if (sf.flavor == f.flavor) {
          row = &sf;
          break;
        }
      }
      if (row == nullptr) {
        sp.flavors.push_back(StoredFlavor{.flavor = f.flavor});
        row = &sp.flavors.back();
      }
      row->calls += f.calls;
      row->tuples += f.tuples;
      row->cycles += f.cycles;
      row->timed_tuples += f.timed_tuples;
    }
    merged_any = true;
  }
  if (merged_any) {
    ++merged_;
    snapshot_.reset();
  }
}

std::shared_ptr<const WarmStartSnapshot> ProfileStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_ == nullptr) {
    auto snap = std::make_shared<WarmStartSnapshot>();
    for (const auto& [key, sp] : profiles_) {
      std::vector<FlavorPrior> priors;
      for (const StoredFlavor& f : sp.flavors) {
        if (f.timed_tuples == 0 || f.cycles == 0) continue;
        priors.push_back(
            {f.flavor, static_cast<f64>(f.cycles) /
                           static_cast<f64>(f.timed_tuples)});
      }
      if (!priors.empty()) {
        snap->Add(sp.site, sp.signature, std::move(priors));
      }
    }
    snapshot_ = std::move(snap);
  }
  return snapshot_;
}

std::vector<StoredProfile> ProfileStore::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoredProfile> out;
  out.reserve(profiles_.size());
  for (const auto& [key, sp] : profiles_) out.push_back(sp);
  return out;
}

void ProfileStore::MergeStrategies(
    const std::vector<StrategyProfile>& deltas) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StrategyProfile& d : deltas) {
    StrategyProfile& rec = strategies_[StrategyKey(d.site, d.kind)];
    if (rec.site.empty()) {
      rec.site = d.site;
      rec.kind = d.kind;
    }
    for (const StrategyProfile::Arm& arm : d.arms) {
      StrategyProfile::Arm* row = nullptr;
      for (StrategyProfile::Arm& r : rec.arms) {
        if (r.label == arm.label) {
          row = &r;
          break;
        }
      }
      if (row == nullptr) {
        rec.arms.push_back(StrategyProfile::Arm{.label = arm.label});
        row = &rec.arms.back();
      }
      row->decisions += arm.decisions;
      row->tuples += arm.tuples;
      row->cycles += arm.cycles;
    }
  }
  // Strategy records never feed WarmStartSnapshot; no invalidation.
}

std::vector<StrategyProfile> ProfileStore::DumpStrategies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StrategyProfile> out;
  out.reserve(strategies_.size());
  for (const auto& [key, rec] : strategies_) out.push_back(rec);
  return out;
}

size_t ProfileStore::strategies_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strategies_.size();
}

void ProfileStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
  strategies_.clear();
  snapshot_.reset();
}

size_t ProfileStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profiles_.size();
}

u64 ProfileStore::profiles_merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_;
}

std::string ProfileStore::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  PutU64(&payload, profiles_.size());
  for (const auto& [key, sp] : profiles_) {
    PutStr(&payload, sp.site);
    PutStr(&payload, sp.signature);
    PutU64(&payload, sp.queries);
    PutU64(&payload, sp.instances);
    PutU64(&payload, sp.calls);
    PutU64(&payload, sp.tuples);
    PutU64(&payload, sp.cycles);
    PutU32(&payload, static_cast<u32>(sp.flavors.size()));
    for (const StoredFlavor& f : sp.flavors) {
      PutStr(&payload, f.flavor);
      PutU64(&payload, f.calls);
      PutU64(&payload, f.tuples);
      PutU64(&payload, f.cycles);
      PutU64(&payload, f.timed_tuples);
    }
  }
  PutU64(&payload, strategies_.size());
  for (const auto& [key, rec] : strategies_) {
    PutStr(&payload, rec.site);
    payload.push_back(static_cast<char>(rec.kind));
    PutU32(&payload, static_cast<u32>(rec.arms.size()));
    for (const StrategyProfile::Arm& arm : rec.arms) {
      PutStr(&payload, arm.label);
      PutU64(&payload, arm.decisions);
      PutU64(&payload, arm.tuples);
      PutU64(&payload, arm.cycles);
    }
  }
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload));
  out.append(payload);
  return out;
}

Status ProfileStore::Deserialize(std::string_view bytes) {
  // All-or-nothing: parse into a temporary map, swap in only on full
  // success; any failure leaves the store empty (cold start).
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
  strategies_.clear();
  snapshot_.reset();
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("knowledge store: truncated header");
  }
  Reader header(bytes.substr(0, kHeaderSize));
  u32 magic = 0, version = 0;
  u64 payload_size = 0, checksum = 0;
  header.U32(&magic);
  header.U32(&version);
  header.U64(&payload_size);
  header.U64(&checksum);
  if (magic != kMagic) {
    return Status::InvalidArgument("knowledge store: bad magic");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("knowledge store: unsupported version " +
                                   std::to_string(version));
  }
  if (bytes.size() - kHeaderSize != payload_size) {
    return Status::InvalidArgument("knowledge store: size mismatch");
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (Fnv1a64(payload) != checksum) {
    return Status::InvalidArgument("knowledge store: checksum mismatch");
  }

  std::map<Key, StoredProfile> parsed;
  Reader r(payload);
  u64 count = 0;
  if (!r.U64(&count)) {
    return Status::InvalidArgument("knowledge store: truncated payload");
  }
  for (u64 i = 0; i < count; ++i) {
    StoredProfile sp;
    u32 flavor_count = 0;
    if (!r.Str(&sp.site) || !r.Str(&sp.signature) || !r.U64(&sp.queries) ||
        !r.U64(&sp.instances) || !r.U64(&sp.calls) || !r.U64(&sp.tuples) ||
        !r.U64(&sp.cycles) || !r.U32(&flavor_count)) {
      return Status::InvalidArgument("knowledge store: truncated profile");
    }
    for (u32 f = 0; f < flavor_count; ++f) {
      StoredFlavor sf;
      if (!r.Str(&sf.flavor) || !r.U64(&sf.calls) || !r.U64(&sf.tuples) ||
          !r.U64(&sf.cycles) || !r.U64(&sf.timed_tuples)) {
        return Status::InvalidArgument("knowledge store: truncated flavor");
      }
      sp.flavors.push_back(std::move(sf));
    }
    Key key(sp.site, sp.signature);
    if (!parsed.emplace(std::move(key), std::move(sp)).second) {
      return Status::InvalidArgument("knowledge store: duplicate profile");
    }
  }
  std::map<std::string, StrategyProfile> parsed_strategies;
  u64 strategy_count = 0;
  if (!r.U64(&strategy_count)) {
    return Status::InvalidArgument("knowledge store: truncated payload");
  }
  for (u64 i = 0; i < strategy_count; ++i) {
    StrategyProfile rec;
    u8 kind = 0;
    u32 arm_count = 0;
    if (!r.Str(&rec.site) || !r.U8(&kind) || !r.U32(&arm_count)) {
      return Status::InvalidArgument("knowledge store: truncated strategy");
    }
    rec.kind = static_cast<StrategyKind>(kind);
    for (u32 a = 0; a < arm_count; ++a) {
      StrategyProfile::Arm arm;
      if (!r.Str(&arm.label) || !r.U64(&arm.decisions) ||
          !r.U64(&arm.tuples) || !r.U64(&arm.cycles)) {
        return Status::InvalidArgument("knowledge store: truncated arm");
      }
      rec.arms.push_back(std::move(arm));
    }
    std::string key = StrategyKey(rec.site, rec.kind);
    if (!parsed_strategies.emplace(std::move(key), std::move(rec)).second) {
      return Status::InvalidArgument("knowledge store: duplicate strategy");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("knowledge store: trailing bytes");
  }
  profiles_ = std::move(parsed);
  strategies_ = std::move(parsed_strategies);
  return Status::OK();
}

Status ProfileStore::Save(const std::string& path) const {
  const std::string bytes = Serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("knowledge store: cannot open " + tmp);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("knowledge store: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("knowledge store: cannot rename to " + path);
  }
  return Status::OK();
}

Status ProfileStore::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    Clear();
    return Status::NotFound("knowledge store: no file at " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    Clear();
    return Status::Internal("knowledge store: read error on " + path);
  }
  return Deserialize(bytes);
}

}  // namespace ma::knowledge
