// PlanCache: compiled stage-DAG reuse across queries with equal
// canonical fingerprints (plan/plan_fingerprint.h).
//
// Lifetime design: submitters own their LogicalPlans and may destroy
// them as soon as the query's Wait() returns — long before the server
// shuts down. A cache entry therefore never borrows the submitted plan:
// on a miss it deep-clones the plan (LogicalPlan::Clone) and compiles
// the StagePlan FROM THE CLONE, so every raw PlanNode* inside the
// cached stages points into plan memory the entry itself owns. Entries
// are immutable after insert and handed out as shared_ptr<const>, so a
// query keeps its entry alive across the run even if the cache is
// cleared mid-flight. Concurrent queries may execute one cached
// StagePlan simultaneously — stage execution only reads it, the same
// sharing discipline the per-worker fragment compilation already
// exercises under TSan.
//
// The one pointer a clone cannot deep-copy is the base Table*: plans
// reference catalog tables by pointer, so tables scanned by cached
// plans must outlive the cache (in practice: the server). The
// fingerprint embeds the table pointer + name + schema, which also
// makes it the catalog version check — AddColumn changes the
// fingerprint and retires stale entries to misses.
//
// Correctness over cleverness: equality is full canonical-byte
// comparison, never hash-only, so a 64-bit hash collision costs one
// cache miss instead of executing the wrong plan.
#ifndef MA_KNOWLEDGE_PLAN_CACHE_H_
#define MA_KNOWLEDGE_PLAN_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "plan/compiler.h"
#include "plan/logical_plan.h"
#include "plan/plan_fingerprint.h"

namespace ma::knowledge {

/// One cached compilation: the owning deep copy of the plan and the
/// stage-DAG compiled from it. Immutable after construction.
struct CachedPlan {
  plan::PlanFingerprint fingerprint;
  plan::LogicalPlan plan;    // owns every node `stages` points into
  plan::StagePlan stages;
};

class PlanCache {
 public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached compilation for a plan canonically equal to
  /// `p`, compiling and inserting on a miss. Returns null — without
  /// caching — when `p` is invalid or cannot be staged (e.g. plans the
  /// staged compiler does not support); callers then fall back to the
  /// uncached path. Thread-safe.
  std::shared_ptr<const CachedPlan> GetOrCompile(const plan::LogicalPlan& p);

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  /// hash -> entries with that hash; equality within a bucket is full
  /// canon comparison.
  std::unordered_map<u64, std::vector<std::shared_ptr<const CachedPlan>>>
      entries_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
};

}  // namespace ma::knowledge

#endif  // MA_KNOWLEDGE_PLAN_CACHE_H_
