#include "knowledge/plan_cache.h"

namespace ma::knowledge {

std::shared_ptr<const CachedPlan> PlanCache::GetOrCompile(
    const plan::LogicalPlan& p) {
  if (!p.ok()) return nullptr;
  plan::PlanFingerprint fp = plan::FingerprintPlan(p);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fp.hash);
    if (it != entries_.end()) {
      for (const auto& entry : it->second) {
        if (entry->fingerprint.canon == fp.canon) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return entry;
        }
      }
    }
  }
  // Compile outside the lock: BuildStagePlan walks the whole plan, and
  // concurrent misses on different plans shouldn't serialize.
  auto entry = std::make_shared<CachedPlan>();
  entry->fingerprint = std::move(fp);
  entry->plan = p.Clone();
  const Status s = plan::Compiler::BuildStagePlan(entry->plan,
                                                  &entry->stages);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (!s.ok()) return nullptr;  // unstageable: not worth caching

  std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = entries_[entry->fingerprint.hash];
  for (const auto& existing : bucket) {
    // A racing miss inserted the same plan first; keep the winner so
    // all queries share one entry.
    if (existing->fingerprint.canon == entry->fingerprint.canon) {
      return existing;
    }
  }
  bucket.push_back(entry);
  return entry;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [hash, bucket] : entries_) n += bucket.size();
  return n;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace ma::knowledge
