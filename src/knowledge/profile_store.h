// Cross-query adaptive knowledge store (the "micro-adaptivity knowledge
// base" direction of paper §6): per-plan-site flavor profiles merged
// across queries, snapshotted into warm-start priors for fresh
// PrimitiveInstances, and persisted across process restarts.
//
// Contract — learned state vs result state: everything in this store is
// REWARD state (which flavor ran how fast). All flavors of a primitive
// are bit-exact by the flavor contract, so nothing read from the store
// can change result bytes — a warm-started run and a cold run may pick
// different flavors in different orders yet produce byte-identical
// tables. The tests assert exactly that (tests/knowledge_test.cc), and
// docs/ADAPTIVITY.md spells out the argument.
//
// Persistence is a versioned binary file: magic, version, payload size,
// FNV-1a-64 checksum, then length-prefixed profiles. Load is
// all-or-nothing — a missing, truncated or corrupt file leaves the
// store EMPTY and returns an error the caller may ignore (cold start),
// never a partially-applied state.
#ifndef MA_KNOWLEDGE_PROFILE_STORE_H_
#define MA_KNOWLEDGE_PROFILE_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "adapt/profile_merge.h"
#include "adapt/strategy.h"
#include "adapt/warm_start.h"
#include "common/status.h"

namespace ma::knowledge {

/// Cumulative usage of one flavor at one plan site, across all merged
/// queries. Mirrors FlavorUsageProfile; timed_tuples keeps the prior
/// cost (cycles/timed_tuples) unbiased under chunked dispatch.
struct StoredFlavor {
  std::string flavor;
  u64 calls = 0;
  u64 tuples = 0;
  u64 cycles = 0;
  u64 timed_tuples = 0;
};

/// Everything the store knows about one plan site, keyed by
/// (site label, primitive signature). The label identifies the plan
/// site ("q1/select"); the signature pins the primitive, so a plan
/// change that rebinds a label to a different primitive starts a fresh
/// profile instead of polluting the old one.
struct StoredProfile {
  std::string site;
  std::string signature;
  u64 queries = 0;    // how many query profiles were folded in
  u64 instances = 0;  // per-thread instances across those queries
  u64 calls = 0;
  u64 tuples = 0;
  u64 cycles = 0;
  std::vector<StoredFlavor> flavors;
};

/// Thread-safe accumulator of per-site flavor knowledge. One store is
/// typically shared by a WorkloadServer's drivers: Merge() after every
/// successful query, Snapshot() before every run to seed priors.
class ProfileStore {
 public:
  ProfileStore() = default;
  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  /// Folds one query's merged profile (QuerySession::Profile()) into
  /// the store. Rows that never ran (calls == 0) are skipped.
  void Merge(const std::vector<InstanceProfile>& profile);

  /// Immutable warm-start view of the current knowledge: per site, the
  /// mean cost (cycles/timed_tuples) of every flavor with timed
  /// observations. Cached between mutations — repeated calls without an
  /// intervening Merge/Load/Clear return the same shared snapshot.
  std::shared_ptr<const WarmStartSnapshot> Snapshot() const;

  /// All profiles in key order (deterministic), for reporting/tests.
  std::vector<StoredProfile> Dump() const;

  /// Folds macro-adaptivity strategy deltas (StrategyBook::ExportDelta)
  /// into the store, summing arm stats by (site key, arm label). Like
  /// flavor profiles, strategy records are pure reward state: nothing
  /// here can change result bytes.
  void MergeStrategies(const std::vector<StrategyProfile>& deltas);

  /// All strategy records in key order, the StrategyBook::Seed payload.
  std::vector<StrategyProfile> DumpStrategies() const;

  size_t strategies_size() const;

  void Clear();
  size_t size() const;
  /// Total query profiles folded in via Merge() since construction
  /// (Load/Deserialize do not count).
  u64 profiles_merged() const;

  // --- persistence ---
  /// Serializes the store to the versioned binary format. Profiles are
  /// emitted in key order, so equal stores serialize to equal bytes
  /// (round-trip tests compare byte-for-byte).
  std::string Serialize() const;
  /// All-or-nothing inverse of Serialize(). On any error (bad magic,
  /// unsupported version, checksum mismatch, truncation) the store is
  /// left EMPTY and the error is returned.
  Status Deserialize(std::string_view bytes);
  /// Serialize() to `path` atomically (write to path + ".tmp", rename).
  Status Save(const std::string& path) const;
  /// Deserialize() the contents of `path`. A missing or unreadable or
  /// corrupt file empties the store and returns an error — callers that
  /// want cold-start-on-anything just ignore it.
  Status Load(const std::string& path);

 private:
  using Key = std::pair<std::string, std::string>;  // (site, signature)

  mutable std::mutex mu_;
  /// std::map: deterministic iteration order makes Serialize/Dump
  /// deterministic without an extra sort.
  std::map<Key, StoredProfile> profiles_;
  /// Strategy records keyed by StrategyKey(site, kind) — the same key
  /// the StrategyBook uses, so seeds and deltas line up exactly.
  std::map<std::string, StrategyProfile> strategies_;
  u64 merged_ = 0;
  /// Lazily built, invalidated on every mutation.
  mutable std::shared_ptr<const WarmStartSnapshot> snapshot_;
};

/// Knowledge wiring for a WorkloadServer (serve/workload_server.h).
struct KnowledgeConfig {
  /// Reuse compiled stage-DAGs across queries with equal fingerprints.
  bool plan_cache = true;
  /// Merge each successful query's profile into the store.
  bool learn = true;
  /// Seed fresh sessions' bandits from the store's snapshot.
  bool warm_start = true;
  /// When non-empty: Load() the store from this path at server start
  /// (cold start if missing/corrupt) and Save() it on Shutdown().
  std::string store_path;
  /// Macro-adaptivity: bandit-select per-stage thread count, bloom
  /// on/off and morsel size (adapt/strategy.h), seeded from the store's
  /// strategy records at start and merged back at Shutdown(). Off by
  /// default — the static heuristics rule unless a workload opts in.
  bool strategies = false;
  /// External store shared across servers/passes; the server creates a
  /// private one when null.
  std::shared_ptr<ProfileStore> store;
};

}  // namespace ma::knowledge

#endif  // MA_KNOWLEDGE_PROFILE_STORE_H_
