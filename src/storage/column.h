// In-memory columnar storage. A Column owns the full data of one
// attribute; scans hand out raw pointers into it, vector-at-a-time.
#ifndef MA_STORAGE_COLUMN_H_
#define MA_STORAGE_COLUMN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_heap.h"
#include "common/types.h"

namespace ma {

class Column {
 public:
  explicit Column(PhysicalType type) : type_(type) {}

  PhysicalType type() const { return type_; }
  size_t size() const { return size_; }

  template <typename T>
  void Append(T v) {
    MA_CHECK(TypeTag<T>::value == type_);
    Storage<T>().push_back(v);
    ++size_;
  }

  /// Appends a string by copying it into the column's heap.
  void AppendString(std::string_view s) {
    MA_CHECK(type_ == PhysicalType::kStr);
    strs_.push_back(heap_.Add(s));
    ++size_;
  }

  /// Bulk append of `n` contiguous values (one type check, memcpy-able).
  template <typename T>
  void AppendBulk(const T* src, size_t n) {
    MA_CHECK(TypeTag<T>::value == type_);
    auto& s = Storage<T>();
    s.insert(s.end(), src, src + n);
    size_ += n;
  }

  /// Bulk gather-append of strings at `sel` positions: payloads move
  /// into this column's heap as one contiguous block (see
  /// StringHeap::AddGather) instead of one heap interaction per row.
  void AppendStringGather(const StrRef* src, const sel_t* sel, size_t n) {
    MA_CHECK(type_ == PhysicalType::kStr);
    heap_.AddGather(src, sel, n, &strs_);
    size_ += n;
  }

  /// Bulk gather-append of values at `sel` positions.
  template <typename T>
  void AppendGather(const T* src, const sel_t* sel, size_t n) {
    MA_CHECK(TypeTag<T>::value == type_);
    auto& s = Storage<T>();
    const size_t base = s.size();
    s.resize(base + n);
    for (size_t j = 0; j < n; ++j) s[base + j] = src[sel[j]];
    size_ += n;
  }

  template <typename T>
  const T* Data() const {
    MA_CHECK(TypeTag<T>::value == type_);
    return const_cast<Column*>(this)->Storage<T>().data();
  }

  const void* RawData() const;

  template <typename T>
  T Get(size_t i) const {
    MA_CHECK(i < size_);
    return Data<T>()[i];
  }

  void Reserve(size_t n);

 private:
  template <typename T>
  std::vector<T>& Storage();

  PhysicalType type_;
  size_t size_ = 0;
  std::vector<i8> i8s_;
  std::vector<i16> i16s_;
  std::vector<i32> i32s_;
  std::vector<i64> i64s_;
  std::vector<f64> f64s_;
  std::vector<StrRef> strs_;
  StringHeap heap_;
};

template <>
inline std::vector<i8>& Column::Storage<i8>() {
  return i8s_;
}
template <>
inline std::vector<i16>& Column::Storage<i16>() {
  return i16s_;
}
template <>
inline std::vector<i32>& Column::Storage<i32>() {
  return i32s_;
}
template <>
inline std::vector<i64>& Column::Storage<i64>() {
  return i64s_;
}
template <>
inline std::vector<f64>& Column::Storage<f64>() {
  return f64s_;
}
template <>
inline std::vector<StrRef>& Column::Storage<StrRef>() {
  return strs_;
}

}  // namespace ma

#endif  // MA_STORAGE_COLUMN_H_
