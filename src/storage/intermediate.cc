#include "storage/intermediate.h"

namespace ma {

IntermediateTable::IntermediateTable(std::string name,
                                     std::vector<ColumnSpec> schema)
    : schema_(std::move(schema)),
      table_(std::make_unique<Table>(std::move(name))) {}

void IntermediateTable::Adopt(std::unique_ptr<Table> t) {
  MA_CHECK(t != nullptr);
  table_ = std::move(t);
  EnsureSchema();
}

void IntermediateTable::EnsureSchema() {
  bool rebuild = false;
  for (const ColumnSpec& spec : schema_) {
    const Column* col = table_->FindColumn(spec.name);
    if (col == nullptr) {
      // A non-empty result always materialized every column; only an
      // empty one can be missing declared columns.
      MA_CHECK(table_->row_count() == 0);
      table_->AddColumn(spec.name, spec.type);
    } else if (col->type() != spec.type) {
      // Appenders that never saw a row guess types (e.g. the aggregate
      // merge falls back to i64); with zero rows the declared schema
      // wins. With rows present this is a compiler schema bug.
      MA_CHECK(table_->row_count() == 0);
      rebuild = true;
    }
  }
  if (rebuild) {
    auto fresh = std::make_unique<Table>(table_->name());
    for (const ColumnSpec& spec : schema_) {
      fresh->AddColumn(spec.name, spec.type);
    }
    table_ = std::move(fresh);
  }
}

}  // namespace ma
