// An order- and bit-sensitive table fingerprint. Row order, column
// names/types and the exact bit pattern of every cell (f64 included)
// all count — the byte-identity suites (plan_test, queries_test,
// parallel_test, serve_test) and the serving layer's result-identity
// checks (tpch/workload.cc, bench_scaling.cc) compare nothing weaker.
#ifndef MA_STORAGE_TABLE_FINGERPRINT_H_
#define MA_STORAGE_TABLE_FINGERPRINT_H_

#include <cstring>
#include <string_view>

#include "storage/table.h"

namespace ma {

inline u64 ExactFingerprint(const Table& t) {
  u64 h = 1469598103934665603ULL;
  auto mix = [&h](u64 v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  auto mix_bytes = [&mix](std::string_view s) {
    for (const char c : s) mix(static_cast<u8>(c));
  };
  mix(t.row_count());
  mix(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column* col = t.column(c);
    mix_bytes(t.column_name(c));
    mix(static_cast<u64>(col->type()));
    for (size_t i = 0; i < col->size(); ++i) {
      switch (col->type()) {
        case PhysicalType::kI8:
          mix(static_cast<u64>(col->Get<i8>(i)));
          break;
        case PhysicalType::kI16:
          mix(static_cast<u64>(col->Get<i16>(i)));
          break;
        case PhysicalType::kI32:
          mix(static_cast<u64>(col->Get<i32>(i)));
          break;
        case PhysicalType::kI64:
          mix(static_cast<u64>(col->Get<i64>(i)));
          break;
        case PhysicalType::kF64: {
          const f64 v = col->Get<f64>(i);
          u64 bits;
          std::memcpy(&bits, &v, sizeof(bits));
          mix(bits);
          break;
        }
        case PhysicalType::kStr:
          mix_bytes(col->Get<StrRef>(i).view());
          break;
      }
    }
  }
  return h;
}

}  // namespace ma

#endif  // MA_STORAGE_TABLE_FINGERPRINT_H_
