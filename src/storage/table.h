// Table: named columns of equal length, plus a helper for
// dictionary-encoding string columns into i64 code columns — the engine
// joins and groups on fixed-width codes, never on raw strings.
#ifndef MA_STORAGE_TABLE_H_
#define MA_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"

namespace ma {

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  size_t row_count() const { return row_count_; }
  void set_row_count(size_t n) { row_count_ = n; }

  /// Adds a column and returns it for filling.
  Column* AddColumn(std::string name, PhysicalType type);

  size_t num_columns() const { return columns_.size(); }
  const std::string& column_name(size_t i) const { return names_[i]; }
  const Column* column(size_t i) const { return columns_[i].get(); }
  Column* mutable_column(size_t i) { return columns_[i].get(); }

  const Column* FindColumn(std::string_view name) const;
  Column* FindMutableColumn(std::string_view name);

  /// Builds `<src>_code`, an i64 column where equal strings in `src` get
  /// equal dense codes (order of first appearance). Returns the number
  /// of distinct values.
  size_t DictEncode(std::string_view src);

  /// Validates that all columns have row_count() rows.
  Status Validate() const;

 private:
  std::string name_;
  size_t row_count_ = 0;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Column>> columns_;
};

}  // namespace ma

#endif  // MA_STORAGE_TABLE_H_
