#include "storage/column.h"

namespace ma {

const void* Column::RawData() const {
  switch (type_) {
    case PhysicalType::kI8:
      return i8s_.data();
    case PhysicalType::kI16:
      return i16s_.data();
    case PhysicalType::kI32:
      return i32s_.data();
    case PhysicalType::kI64:
      return i64s_.data();
    case PhysicalType::kF64:
      return f64s_.data();
    case PhysicalType::kStr:
      return strs_.data();
  }
  return nullptr;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case PhysicalType::kI8:
      i8s_.reserve(n);
      break;
    case PhysicalType::kI16:
      i16s_.reserve(n);
      break;
    case PhysicalType::kI32:
      i32s_.reserve(n);
      break;
    case PhysicalType::kI64:
      i64s_.reserve(n);
      break;
    case PhysicalType::kF64:
      f64s_.reserve(n);
      break;
    case PhysicalType::kStr:
      strs_.reserve(n);
      break;
  }
}

}  // namespace ma
