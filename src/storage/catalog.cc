#include "storage/catalog.h"

namespace ma {

Table* Catalog::AddTable(std::unique_ptr<Table> table) {
  Table* raw = table.get();
  tables_[table->name()] = std::move(table);
  return raw;
}

Table* Catalog::Find(std::string_view name) {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::Find(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace ma
