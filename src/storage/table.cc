#include "storage/table.h"

#include <string>
#include <unordered_map>

namespace ma {

Column* Table::AddColumn(std::string name, PhysicalType type) {
  MA_CHECK(FindColumn(name) == nullptr);
  names_.push_back(std::move(name));
  columns_.push_back(std::make_unique<Column>(type));
  return columns_.back().get();
}

const Column* Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return columns_[i].get();
  }
  return nullptr;
}

Column* Table::FindMutableColumn(std::string_view name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return columns_[i].get();
  }
  return nullptr;
}

size_t Table::DictEncode(std::string_view src) {
  const Column* s = FindColumn(src);
  MA_CHECK(s != nullptr && s->type() == PhysicalType::kStr);
  Column* code = AddColumn(std::string(src) + "_code", PhysicalType::kI64);
  code->Reserve(s->size());
  std::unordered_map<std::string_view, i64> dict;
  const StrRef* data = s->Data<StrRef>();
  for (size_t i = 0; i < s->size(); ++i) {
    auto [it, inserted] =
        dict.try_emplace(data[i].view(), static_cast<i64>(dict.size()));
    code->Append<i64>(it->second);
  }
  return dict.size();
}

Status Table::Validate() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->size() != row_count_) {
      return Status::Internal("table " + name_ + " column " + names_[i] +
                              " has " + std::to_string(columns_[i]->size()) +
                              " rows, expected " +
                              std::to_string(row_count_));
    }
  }
  return Status::OK();
}

}  // namespace ma
