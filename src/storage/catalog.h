// Catalog: owns tables by name.
#ifndef MA_STORAGE_CATALOG_H_
#define MA_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "storage/table.h"

namespace ma {

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Takes ownership; replaces any existing table with the same name.
  Table* AddTable(std::unique_ptr<Table> table);

  Table* Find(std::string_view name);
  const Table* Find(std::string_view name) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace ma

#endif  // MA_STORAGE_CATALOG_H_
