// IntermediateTable: the materialized output of a non-terminal plan
// stage. Columnar like any Table — downstream stages scan it with
// ScanOperator or MorselScanOperator exactly like a base table — but
// with a schema declared up front by the plan compiler, so an empty
// result still carries typed columns that downstream scans and join
// builds can resolve. Filled either by adopting a merged result table
// or through mutable_table(), where the parallel executor appends
// per-worker/per-morsel partial tables in morsel order (the
// deterministic merge; see ParallelExecutor::RunPipelineInto).
#ifndef MA_STORAGE_INTERMEDIATE_H_
#define MA_STORAGE_INTERMEDIATE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace ma {

class IntermediateTable {
 public:
  struct ColumnSpec {
    std::string name;
    PhysicalType type;
  };

  /// Creates an empty intermediate named `name` with the declared
  /// schema. Columns are not instantiated until rows arrive (or
  /// EnsureSchema() runs), so appenders that create columns on first
  /// use keep working unchanged.
  IntermediateTable(std::string name, std::vector<ColumnSpec> schema);

  const Table* table() const { return table_.get(); }
  /// The sink for appenders (per-worker partials land here in morsel
  /// order); call EnsureSchema() once appending is done.
  Table* mutable_table() { return table_.get(); }

  /// Takes over `t` as the content (no copy).
  void Adopt(std::unique_ptr<Table> t);

  /// Ensures every declared column exists with its declared type, so
  /// downstream stages can scan / type-resolve even a zero-row result.
  /// An empty table whose appender guessed a different type (e.g. the
  /// aggregate merge's i64 fallback when every worker starved) is
  /// rebuilt from the declared schema; a typed mismatch with rows
  /// present is a compiler bug and aborts.
  void EnsureSchema();

  size_t row_count() const { return table_->row_count(); }
  const std::vector<ColumnSpec>& schema() const { return schema_; }

 private:
  std::vector<ColumnSpec> schema_;
  std::unique_ptr<Table> table_;
};

}  // namespace ma

#endif  // MA_STORAGE_INTERMEDIATE_H_
