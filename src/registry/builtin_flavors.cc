#include "prim/aggr_kernels.h"
#include "prim/bloom_kernels.h"
#include "prim/compiler_flavors.h"
#include "prim/fetch_kernels.h"
#include "prim/hash_kernels.h"
#include "prim/map_kernels.h"
#include "prim/mergejoin_kernels.h"
#include "prim/sel_kernels.h"
#include "prim/simd.h"
#include "prim/string_kernels.h"
#include "registry/primitive_dictionary.h"

namespace ma {

void RegisterBuiltinFlavors(PrimitiveDictionary* dict) {
  RegisterMapKernels(dict);
  RegisterSelKernels(dict);
  RegisterAggrKernels(dict);
  RegisterHashKernels(dict);
  RegisterBloomKernels(dict);
  RegisterFetchKernels(dict);
  RegisterMergeJoinKernels(dict);
  RegisterStringKernels(dict);
  RegisterCompilerFlavorsGcc(dict);
  RegisterCompilerFlavorsIcc(dict);
  RegisterCompilerFlavorsClang(dict);
  // Last: consults CPUID, so the dictionary only carries SIMD flavors the
  // host can execute.
  RegisterSimdFlavors(dict);
}

}  // namespace ma
