// Flavor metadata. A "flavor" is one concrete implementation of a logical
// primitive; the Primitive Dictionary maps a signature string to the set
// of flavors registered for it (paper §3.1).
//
// Flavor entries are immutable once registered: PrimitiveInstances
// snapshot the function pointers at construction and keep all usage
// accounting thread-local, so any number of worker threads can dispatch
// through the same dictionary without synchronization (morsel-driven
// parallelism relies on this).
#ifndef MA_REGISTRY_FLAVOR_H_
#define MA_REGISTRY_FLAVOR_H_

#include <string>
#include <vector>

#include "prim/prim_call.h"

namespace ma {

/// Identifies which flavor-generation mechanism produced a flavor. These
/// are the paper's five flavor sets plus the always-present default.
enum class FlavorSetId : u8 {
  kDefault = 0,   // the single canonical implementation
  kBranch,        // branching vs no-branching selections (§1, §2)
  kCompiler,      // different build environments (§2 "Compiler Variation")
  kFission,       // loop fission in bloom-filter probe (§2)
  kFullCompute,   // full vs selective computation (§2)
  kUnroll,        // hand loop unrolling (§2)
  kSimd,          // explicit AVX2/SSE4 kernels, runtime CPUID-detected
  kNumSets,
};

const char* FlavorSetName(FlavorSetId id);

struct FlavorInfo {
  /// Short human name, e.g. "branching", "gcc", "fission".
  std::string name;
  /// Which flavor set this implementation belongs to.
  FlavorSetId set = FlavorSetId::kDefault;
  /// The implementation.
  PrimFn fn = nullptr;
};

/// All flavors registered under one primitive signature.
struct FlavorEntry {
  std::string signature;
  std::vector<FlavorInfo> flavors;

  /// Index of the flavor used when adaptivity is disabled (first
  /// registered kDefault flavor, else flavor 0).
  int default_index = 0;

  int FindFlavor(std::string_view name) const;
};

}  // namespace ma

#endif  // MA_REGISTRY_FLAVOR_H_
