#include "registry/primitive_dictionary.h"

#include <algorithm>

namespace ma {

Status PrimitiveDictionary::Register(std::string_view signature,
                                     FlavorInfo flavor, bool is_default) {
  if (signature.empty()) {
    return Status::InvalidArgument("empty primitive signature");
  }
  if (flavor.fn == nullptr) {
    return Status::InvalidArgument("null flavor function for " +
                                   std::string(signature));
  }
  auto [it, inserted] =
      entries_.try_emplace(std::string(signature), FlavorEntry{});
  FlavorEntry& entry = it->second;
  if (inserted) entry.signature = std::string(signature);
  if (entry.FindFlavor(flavor.name) >= 0) {
    return Status::AlreadyExists("flavor '" + flavor.name +
                                 "' already registered for " +
                                 std::string(signature));
  }
  entry.flavors.push_back(std::move(flavor));
  if (is_default) {
    entry.default_index = static_cast<int>(entry.flavors.size()) - 1;
  }
  return Status::OK();
}

const FlavorEntry* PrimitiveDictionary::Find(
    std::string_view signature) const {
  auto it = entries_.find(std::string(signature));
  return it == entries_.end() ? nullptr : &it->second;
}

FlavorEntry* PrimitiveDictionary::FindMutable(std::string_view signature) {
  auto it = entries_.find(std::string(signature));
  return it == entries_.end() ? nullptr : &it->second;
}

size_t PrimitiveDictionary::num_flavors() const {
  size_t total = 0;
  for (const auto& [sig, entry] : entries_) total += entry.flavors.size();
  return total;
}

std::vector<std::string> PrimitiveDictionary::Signatures() const {
  std::vector<std::string> sigs;
  sigs.reserve(entries_.size());
  for (const auto& [sig, entry] : entries_) sigs.push_back(sig);
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

PrimitiveDictionary& PrimitiveDictionary::Global() {
  static PrimitiveDictionary* dict = [] {
    auto* d = new PrimitiveDictionary();
    RegisterBuiltinFlavors(d);
    return d;
  }();
  return *dict;
}

}  // namespace ma
