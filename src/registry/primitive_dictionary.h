// The Primitive Dictionary resolves primitive signature strings (e.g.
// "map_mul_i32_col_i32_col") to the set of registered implementations.
// Micro Adaptivity extends the classic signature->function mapping to
// signature->{flavor...} with per-flavor metadata, and provides a dynamic
// registration mechanism so flavor libraries can be added at startup or
// while the system is running (paper §3.1).
#ifndef MA_REGISTRY_PRIMITIVE_DICTIONARY_H_
#define MA_REGISTRY_PRIMITIVE_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "registry/flavor.h"

namespace ma {

class PrimitiveDictionary {
 public:
  PrimitiveDictionary() = default;
  PrimitiveDictionary(const PrimitiveDictionary&) = delete;
  PrimitiveDictionary& operator=(const PrimitiveDictionary&) = delete;

  /// Registers one flavor under `signature`. Creates the entry on first
  /// registration; `is_default` marks the flavor used when adaptivity is
  /// off. Re-registering the same (signature, flavor-name) pair fails.
  Status Register(std::string_view signature, FlavorInfo flavor,
                  bool is_default = false);

  /// Looks up the flavor entry for a signature, or nullptr.
  const FlavorEntry* Find(std::string_view signature) const;
  FlavorEntry* FindMutable(std::string_view signature);

  /// Number of distinct signatures / total registered flavors.
  size_t num_signatures() const { return entries_.size(); }
  size_t num_flavors() const;

  /// All signatures, sorted, for diagnostics and tests.
  std::vector<std::string> Signatures() const;

  /// The process-wide dictionary pre-populated with all built-in flavor
  /// libraries (see RegisterBuiltinFlavors).
  static PrimitiveDictionary& Global();

 private:
  std::unordered_map<std::string, FlavorEntry> entries_;
};

/// Registers every built-in kernel family and all their flavors into
/// `dict`. Called once for the global dictionary; tests can call it on
/// private dictionaries too.
void RegisterBuiltinFlavors(PrimitiveDictionary* dict);

}  // namespace ma

#endif  // MA_REGISTRY_PRIMITIVE_DICTIONARY_H_
