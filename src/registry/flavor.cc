#include "registry/flavor.h"

namespace ma {

const char* FlavorSetName(FlavorSetId id) {
  switch (id) {
    case FlavorSetId::kDefault:
      return "default";
    case FlavorSetId::kBranch:
      return "branch";
    case FlavorSetId::kCompiler:
      return "compiler";
    case FlavorSetId::kFission:
      return "fission";
    case FlavorSetId::kFullCompute:
      return "fullcompute";
    case FlavorSetId::kUnroll:
      return "unroll";
    case FlavorSetId::kSimd:
      return "simd";
    case FlavorSetId::kNumSets:
      break;
  }
  return "?";
}

int FlavorEntry::FindFlavor(std::string_view name) const {
  for (size_t i = 0; i < flavors.size(); ++i) {
    if (flavors[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ma
